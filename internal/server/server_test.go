package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"predfilter"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}

func subscribe(t *testing.T, ts *httptest.Server, xpe string) int {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/subscriptions", map[string]string{"expression": xpe})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe %q: status %d body %v", xpe, resp.StatusCode, body)
	}
	return int(body["id"].(float64))
}

func publish(t *testing.T, ts *httptest.Server, doc string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body := decodeBody(t, resp)
		t.Fatalf("publish: status %d body %v", resp.StatusCode, body)
	}
	return decodeBody(t, resp)
}

func TestSubscribePublishDeliver(t *testing.T) {
	ts := newTestServer(t, Config{})
	alerts := subscribe(t, ts, "//alert[@kind=weather]")
	trades := subscribe(t, ts, "/feed/trade[@sym=ACME]")
	all := subscribe(t, ts, "/feed/*")

	out := publish(t, ts, `<feed><alert kind="weather"><msg/></alert></feed>`)
	if out["matches"].(float64) != 2 {
		t.Fatalf("matches = %v, want 2", out["matches"])
	}
	out = publish(t, ts, `<feed><trade sym="ACME"><px/></trade></feed>`)
	if out["matches"].(float64) != 2 {
		t.Fatalf("matches = %v, want 2", out["matches"])
	}
	out = publish(t, ts, `<note/>`)
	if out["matches"].(float64) != 0 {
		t.Fatalf("matches = %v, want 0", out["matches"])
	}

	// Drain deliveries.
	drain := func(id int) []any {
		resp, err := http.Get(fmt.Sprintf("%s/deliveries/%d?max=10", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deliveries: status %d", resp.StatusCode)
		}
		return decodeBody(t, resp)["documents"].([]any)
	}
	if docs := drain(alerts); len(docs) != 1 || !strings.Contains(docs[0].(string), "alert") {
		t.Errorf("alerts deliveries = %v", docs)
	}
	if docs := drain(trades); len(docs) != 1 || !strings.Contains(docs[0].(string), "trade") {
		t.Errorf("trades deliveries = %v", docs)
	}
	if docs := drain(all); len(docs) != 2 {
		t.Errorf("all deliveries = %d, want 2", len(docs))
	}
	// Drained: second read is empty.
	if docs := drain(all); len(docs) != 0 {
		t.Errorf("second drain = %d, want 0", len(docs))
	}
}

func TestUnsubscribe(t *testing.T) {
	ts := newTestServer(t, Config{})
	id := subscribe(t, ts, "/a")
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscriptions/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	out := publish(t, ts, `<a/>`)
	if out["matches"].(float64) != 0 {
		t.Errorf("matches after unsubscribe = %v", out["matches"])
	}
	// Deleting again is a 404.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("second delete: status %d, want 404", resp2.StatusCode)
	}
}

func TestSubscriptionInfoAndStats(t *testing.T) {
	ts := newTestServer(t, Config{})
	id := subscribe(t, ts, "/a/b")
	subscribe(t, ts, "/a/b") // duplicate shares the engine entry
	publish(t, ts, `<a><b/></a>`)

	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody(t, resp)
	if info["expression"] != "/a/b" || info["delivered"].(float64) != 1 || info["pending"].(float64) != 1 {
		t.Errorf("info = %v", info)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, resp)
	if stats["subscriptions"].(float64) != 2 {
		t.Errorf("stats subscriptions = %v", stats["subscriptions"])
	}
	if stats["distinct_expressions"].(float64) != 1 {
		t.Errorf("stats distinct_expressions = %v", stats["distinct_expressions"])
	}
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	ts := newTestServer(t, Config{QueueLimit: 2})
	id := subscribe(t, ts, "/m")
	publish(t, ts, `<m v="1"/>`)
	publish(t, ts, `<m v="2"/>`)
	publish(t, ts, `<m v="3"/>`)

	resp, err := http.Get(fmt.Sprintf("%s/deliveries/%d?max=10", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	docs := body["documents"].([]any)
	if len(docs) != 2 {
		t.Fatalf("kept %d documents, want 2", len(docs))
	}
	if !strings.Contains(docs[0].(string), `v="2"`) || !strings.Contains(docs[1].(string), `v="3"`) {
		t.Errorf("oldest not dropped: %v", docs)
	}

	resp, err = http.Get(fmt.Sprintf("%s/subscriptions/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody(t, resp)
	if info["dropped"].(float64) != 1 {
		t.Errorf("dropped = %v, want 1", info["dropped"])
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxDocumentBytes: 64})
	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"bad-json", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/subscriptions", "application/json", strings.NewReader("{"))
			return resp
		}, http.StatusBadRequest},
		{"empty-expression", func() *http.Response {
			resp, _ := postJSONResp(ts.URL+"/subscriptions", map[string]string{"expression": "  "})
			return resp
		}, http.StatusBadRequest},
		{"bad-expression", func() *http.Response {
			resp, _ := postJSONResp(ts.URL+"/subscriptions", map[string]string{"expression": "]["})
			return resp
		}, http.StatusUnprocessableEntity},
		{"bad-xml", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader("<a><b></a>"))
			return resp
		}, http.StatusUnprocessableEntity},
		{"too-large", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader("<a>"+strings.Repeat("x", 100)+"</a>"))
			return resp
		}, http.StatusRequestEntityTooLarge},
		{"unknown-subscription", func() *http.Response {
			resp, _ := http.Get(ts.URL + "/deliveries/999")
			return resp
		}, http.StatusNotFound},
		{"bad-id", func() *http.Response {
			resp, _ := http.Get(ts.URL + "/deliveries/xyz")
			return resp
		}, http.StatusBadRequest},
		{"bad-max", func() *http.Response {
			id := subscribe(t, ts, "/q")
			resp, _ := http.Get(fmt.Sprintf("%s/deliveries/%d?max=-1", ts.URL, id))
			return resp
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func postJSONResp(url string, body any) (*http.Response, error) {
	data, _ := json.Marshal(body)
	return http.Post(url, "application/json", bytes.NewReader(data))
}

// TestConcurrentPublish hammers publish from several goroutines while
// subscriptions are added; counts must be coherent.
func TestConcurrentPublish(t *testing.T) {
	ts := newTestServer(t, Config{QueueLimit: 10000, Engine: predfilter.Config{}})
	id := subscribe(t, ts, "/doc")
	const (
		workers = 8
		per     = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader("<doc/>"))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody(t, resp)
	if got := info["delivered"].(float64); got != workers*per {
		t.Errorf("delivered = %v, want %d", got, workers*per)
	}
}

func TestPreload(t *testing.T) {
	srv := New(Config{})
	ids, err := srv.Preload([]string{"/a/b", "//c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	out := publish(t, ts, `<a><b/><c/></a>`)
	if out["matches"].(float64) != 2 {
		t.Errorf("matches = %v, want 2", out["matches"])
	}
	if _, err := srv.Preload([]string{"]["}); err == nil {
		t.Error("Preload accepted garbage")
	}
}

func TestPublishBatch(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	alerts := subscribe(t, ts, "//alert")
	subscribe(t, ts, "/feed/trade")

	resp, body := postJSON(t, ts.URL+"/publish/batch", map[string]any{
		"documents": []string{
			`<feed><alert/></feed>`,
			`<unclosed>`,
			`<feed><trade/><alert/></feed>`,
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %v", resp.StatusCode, body)
	}
	if body["published"].(float64) != 2 {
		t.Fatalf("published = %v, want 2", body["published"])
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	r0 := results[0].(map[string]any)
	r1 := results[1].(map[string]any)
	r2 := results[2].(map[string]any)
	if r0["matches"].(float64) != 1 || r2["matches"].(float64) != 2 {
		t.Fatalf("matches = %v / %v, want 1 / 2", r0["matches"], r2["matches"])
	}
	if r1["error"] == nil || r1["error"].(string) == "" {
		t.Fatalf("malformed document did not report an error: %v", r1)
	}

	// Matched documents were queued for delivery, in batch order.
	resp, err := http.Get(fmt.Sprintf("%s/deliveries/%d?max=10", ts.URL, alerts))
	if err != nil {
		t.Fatal(err)
	}
	docs := decodeBody(t, resp)["documents"].([]any)
	if len(docs) != 2 {
		t.Fatalf("alert deliveries = %d, want 2", len(docs))
	}
	if !strings.Contains(docs[1].(string), "trade") {
		t.Fatalf("deliveries out of batch order: %v", docs)
	}
}

func TestPublishBatchValidation(t *testing.T) {
	ts := newTestServer(t, Config{MaxDocumentBytes: 32})
	resp, _ := postJSON(t, ts.URL+"/publish/batch", map[string]any{"documents": []string{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/publish/batch", map[string]any{
		"documents": []string{"<a>" + strings.Repeat("x", 64) + "</a>"},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized document: status %d, want 413", resp.StatusCode)
	}
}

func TestDebugEndpoints(t *testing.T) {
	// pprof is off by default: the profiling surface must not leak into
	// production. /debug/vars is observability, not profiling, and stays
	// on unconditionally.
	ts := newTestServer(t, Config{})
	resp0, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without Debug: status %d, want 404", resp0.StatusCode)
	}
	resp0, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars without Debug: status %d, want 200 (always on)", resp0.StatusCode)
	}

	dbg := newTestServer(t, Config{Debug: true})
	subscribe(t, dbg, "//alert")
	publish(t, dbg, `<feed><alert/></feed>`)
	resp, err := http.Get(dbg.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	vars := decodeBody(t, resp)
	if vars["docs_published"].(float64) != 1 {
		t.Fatalf("docs_published = %v, want 1", vars["docs_published"])
	}
	if vars["matches_total"].(float64) != 1 {
		t.Fatalf("matches_total = %v, want 1", vars["matches_total"])
	}
	if vars["gomaxprocs"].(float64) < 1 {
		t.Fatalf("gomaxprocs = %v", vars["gomaxprocs"])
	}
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

func TestStatsReportPathCache(t *testing.T) {
	ts := newTestServer(t, Config{Debug: true})
	subscribe(t, ts, "/a/b")
	publish(t, ts, `<a><b/></a>`)
	publish(t, ts, `<a><b/></a>`) // second publish rides the path cache

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, resp)
	pc, ok := stats["path_cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing path_cache: %v", stats)
	}
	if pc["hits"].(float64) < 1 {
		t.Errorf("path_cache hits = %v, want >= 1", pc["hits"])
	}
	if pc["entries"].(float64) < 1 || pc["max_bytes"].(float64) <= 0 {
		t.Errorf("path_cache residency = %v", pc)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeBody(t, resp)
	if _, ok := vars["path_cache"].(map[string]any); !ok {
		t.Fatalf("debug vars missing path_cache: %v", vars)
	}
}

func TestStatsOmitDisabledPathCache(t *testing.T) {
	ts := newTestServer(t, Config{Engine: predfilter.Config{PathCacheBytes: -1}})
	subscribe(t, ts, "/a/b")
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, resp)
	if _, ok := stats["path_cache"]; ok {
		t.Fatalf("path_cache reported despite being disabled: %v", stats)
	}
}
