package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"predfilter"
	"predfilter/internal/dtd"
)

// CachePoint is one measured cache configuration: matching throughput over
// pre-parsed documents (so the cache's effect is not diluted by parsing)
// plus the cache counters at the end of the measured interval.
type CachePoint struct {
	Config       string  `json:"config"` // "off", "256KB", ...
	MaxBytes     int64   `json:"max_bytes"`
	DocsPerSec   float64 `json:"docs_per_sec"`
	Speedup      float64 `json:"speedup_vs_off"`
	AllocsPerDoc float64 `json:"allocs_per_doc"`
	HitRate      float64 `json:"hit_rate"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	Evictions    int64   `json:"evictions"`
	Entries      int     `json:"entries"`
	Bytes        int64   `json:"bytes"`
}

// CacheDTDReport is the cache sweep over one DTD's workload: a cache-off
// baseline, the size sweep, and a streaming (shared-cache, multi-worker)
// on/off pair.
type CacheDTDReport struct {
	DTD           string       `json:"dtd"`
	Exprs         int          `json:"exprs"`
	Docs          int          `json:"docs"`
	Rounds        int          `json:"rounds"`
	Off           CachePoint   `json:"off"`
	Sizes         []CachePoint `json:"sizes"`
	StreamWorkers int          `json:"stream_workers"`
	StreamOff     CachePoint   `json:"stream_off"`
	StreamOn      CachePoint   `json:"stream_on"`
	// Stages holds the per-stage latency digests from the stream-on engine
	// (the cache's steady-state configuration); populated only with stage
	// metrics requested (xfbench -metrics).
	Stages map[string]StageSummary `json:"stages,omitempty"`
}

// CacheReport is the -exp cache output (BENCH_cache.json).
type CacheReport struct {
	Scale      string           `json:"scale"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	DTDs       []CacheDTDReport `json:"dtds"`
}

// RunCache measures the structural path-signature cache: match-only
// throughput (pre-parsed documents) with the cache disabled and at each
// size in sizesKB, for the NITF and PSD workloads, plus a streaming
// MatchBatch pair showing the shared cache under worker concurrency. Every
// engine gets one warmup pass (freeze + cold misses) before measurement,
// so the cached points report steady-state hit behavior — the repeated
// same-DTD document stream the cache is built for. With stageMetrics set
// each DTD report additionally carries per-stage latency digests.
func RunCache(s Scale, sizesKB []int, progress io.Writer, stageMetrics bool) (*CacheReport, error) {
	rep := &CacheReport{
		Scale:      s.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, spec := range []struct {
		d     *dtd.DTD
		exprs int
	}{
		{dtd.NITF(), 50000},
		{dtd.PSD(), 10000},
	} {
		dr, err := runCacheDTD(s, spec.d, s.exprs(spec.exprs), sizesKB, progress, stageMetrics)
		if err != nil {
			return nil, err
		}
		rep.DTDs = append(rep.DTDs, *dr)
	}
	return rep, nil
}

func runCacheDTD(s Scale, d *dtd.DTD, exprs int, sizesKB []int, progress io.Writer, stageMetrics bool) (*CacheDTDReport, error) {
	cfg := DefaultWorkloadConfig(exprs)
	cfg.Docs = s.Docs
	w, err := NewWorkload(d, cfg)
	if err != nil {
		return nil, err
	}
	parsed := make([]*predfilter.Document, len(w.Docs))
	for i, raw := range w.Docs {
		if parsed[i], err = predfilter.ParseDocument(raw); err != nil {
			return nil, err
		}
	}

	rounds := 1
	for rounds*len(w.Docs) < 200 {
		rounds++
	}
	total := rounds * len(w.Docs)

	build := func(cacheBytes int64) (*predfilter.Engine, error) {
		eng := predfilter.New(predfilter.Config{PathCacheBytes: cacheBytes})
		for _, x := range w.XPEs {
			if _, err := eng.Add(x); err != nil {
				return nil, fmt.Errorf("bench: add %q: %w", x, err)
			}
		}
		return eng, nil
	}

	// measure runs one warmup round, then rounds measured rounds of run.
	measure := func(eng *predfilter.Engine, run func()) CachePoint {
		run() // warmup: freeze, fill the cache
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			run()
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		pc := eng.Stats().PathCache
		return CachePoint{
			DocsPerSec:   float64(total) / elapsed.Seconds(),
			AllocsPerDoc: float64(m1.Mallocs-m0.Mallocs) / float64(total),
			HitRate:      pc.HitRate(),
			Hits:         pc.Hits,
			Misses:       pc.Misses,
			Evictions:    pc.Evictions,
			Entries:      pc.Entries,
			Bytes:        pc.Bytes,
		}
	}
	matchAll := func(eng *predfilter.Engine) func() {
		return func() {
			for _, doc := range parsed {
				eng.MatchParsed(doc)
			}
		}
	}

	dr := &CacheDTDReport{DTD: d.Name, Exprs: len(w.XPEs), Docs: len(w.Docs), Rounds: rounds}

	off, err := build(-1)
	if err != nil {
		return nil, err
	}
	dr.Off = measure(off, matchAll(off))
	dr.Off.Config = "off"
	dr.Off.MaxBytes = -1
	dr.Off.Speedup = 1
	progressf(progress, "  %-5s cache=off      %9.0f docs/sec  %6.0f allocs/doc\n",
		d.Name, dr.Off.DocsPerSec, dr.Off.AllocsPerDoc)

	for _, kb := range sizesKB {
		eng, err := build(int64(kb) << 10)
		if err != nil {
			return nil, err
		}
		p := measure(eng, matchAll(eng))
		p.Config = fmt.Sprintf("%dKB", kb)
		p.MaxBytes = int64(kb) << 10
		p.Speedup = p.DocsPerSec / dr.Off.DocsPerSec
		dr.Sizes = append(dr.Sizes, p)
		progressf(progress, "  %-5s cache=%-8s %9.0f docs/sec  %6.0f allocs/doc  %.2fx  hit=%.1f%% entries=%d evict=%d\n",
			d.Name, p.Config, p.DocsPerSec, p.AllocsPerDoc, p.Speedup, 100*p.HitRate, p.Entries, p.Evictions)
	}

	// Streaming pair: all workers share one cache, so this measures the
	// shard-lock contention against the saved matching work.
	workers := rep2(runtime.NumCPU())
	dr.StreamWorkers = workers
	batchAll := func(eng *predfilter.Engine) func() {
		return func() { eng.MatchBatch(w.Docs, workers) }
	}
	soff, err := build(-1)
	if err != nil {
		return nil, err
	}
	dr.StreamOff = measure(soff, batchAll(soff))
	dr.StreamOff.Config = "stream-off"
	dr.StreamOff.MaxBytes = -1
	dr.StreamOff.Speedup = 1
	son, err := build(0) // default bound
	if err != nil {
		return nil, err
	}
	dr.StreamOn = measure(son, batchAll(son))
	dr.StreamOn.Config = "stream-on"
	dr.StreamOn.MaxBytes = son.Stats().PathCache.MaxBytes
	dr.StreamOn.Speedup = dr.StreamOn.DocsPerSec / dr.StreamOff.DocsPerSec
	progressf(progress, "  %-5s stream w=%d     off %9.0f on %9.0f docs/sec  %.2fx  hit=%.1f%%\n",
		d.Name, workers, dr.StreamOff.DocsPerSec, dr.StreamOn.DocsPerSec, dr.StreamOn.Speedup, 100*dr.StreamOn.HitRate)
	if stageMetrics {
		dr.Stages = stageSummaries(son)
	}

	return dr, nil
}

// rep2 clamps the streaming worker count to at least 2 so the shared-cache
// point exercises concurrency even on single-CPU hosts.
func rep2(n int) int {
	if n < 2 {
		return 2
	}
	return n
}

// DefaultCacheSizesKB is the -exp cache size sweep: from pressure-inducing
// small bounds through the 16 MiB default.
func DefaultCacheSizesKB() []int { return []int{256, 1024, 4096, 16384} }

// runCache adapts RunCache to the experiment registry; the JSON report
// form is produced by cmd/xfbench.
func runCache(s Scale, progress io.Writer) ([]Point, error) {
	rep, err := RunCache(s, DefaultCacheSizesKB(), progress, false)
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, dr := range rep.DTDs {
		toResult := func(p CachePoint) Result {
			return Result{
				Algorithm: "cache",
				Exprs:     dr.Exprs,
				Filter:    time.Duration(float64(time.Second) / p.DocsPerSec),
			}
		}
		points = append(points, Point{Series: dr.DTD + "/off", X: 0, XLabel: "cache KB", R: toResult(dr.Off)})
		for _, p := range dr.Sizes {
			points = append(points, Point{Series: dr.DTD + "/on", X: float64(p.MaxBytes) / 1024, XLabel: "cache KB", R: toResult(p)})
		}
	}
	return points, nil
}
