package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"predfilter/internal/dtd"
	"predfilter/internal/xmldoc"
)

// Scale shrinks the paper-scale experiments to laptop budgets. Docs is the
// document count per DTD (paper: 500) and Factor multiplies every
// expression count (paper: 1.0, up to 5 million expressions).
type Scale struct {
	Name   string
	Docs   int
	Factor float64
}

// The predefined scales.
var (
	// Smoke is for CI-style sanity runs.
	Smoke = Scale{Name: "smoke", Docs: 10, Factor: 0.01}
	// Default reproduces every shape at ~10% of paper scale.
	Default = Scale{Name: "default", Docs: 50, Factor: 0.1}
	// Full is the paper's scale (500 documents, millions of expressions).
	Full = Scale{Name: "full", Docs: 500, Factor: 1}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke":
		return Smoke, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (smoke, default, full)", name)
}

func (s Scale) exprs(n int) int {
	v := int(float64(n) * s.Factor)
	if v < 100 {
		v = 100
	}
	return v
}

// smallExprs is for experiments whose paper-scale counts are already
// laptop-friendly (Figure 6): they run at paper scale except under the
// smoke scale.
func (s Scale) smallExprs(n int) int {
	if s.Name == "smoke" {
		v := n / 50
		if v < 100 {
			v = 100
		}
		return v
	}
	return n
}

// Point is one measured series point of an experiment.
type Point struct {
	Series string
	X      float64 // expression count, probability, or filter count
	XLabel string
	R      Result
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale, progress io.Writer) ([]Point, error)
}

// Experiments is the registry, in paper order.
var Experiments = []Experiment{
	{ID: "table1", Title: "Table 1: predicate matching results for a//b/c and c//b//a over (a,b,c,a,b,c)", Run: runTable1},
	{ID: "fig6a", Title: "Figure 6(a): varying the number of distinct XPEs, NITF (25k-125k)", Run: runFig6a},
	{ID: "fig6b", Title: "Figure 6(b): varying the number of distinct XPEs, PSD (1k-10k)", Run: runFig6b},
	{ID: "fig7", Title: "Figure 7: duplicate expression workload, PSD (0.5M-5M)", Run: runFig7},
	{ID: "fig7nitf", Title: "Figure 7 (companion): duplicate expression workload, NITF (0.5M-5M)", Run: runFig7NITF},
	{ID: "fig8w", Title: "Figure 8: varying the wildcard probability, NITF, 2M expressions", Run: runFig8W},
	{ID: "fig8do", Title: "Figure 8 (companion): varying the descendant probability, NITF, 2M expressions", Run: runFig8DO},
	{ID: "fig9a", Title: "Figure 9(a): attribute filters per expression, NITF", Run: runFig9a},
	{ID: "fig9b", Title: "Figure 9(b): attribute filters per expression, PSD", Run: runFig9b},
	{ID: "fig10", Title: "Figure 10: cost breakdown of predicate vs expression matching, NITF (1M-5M)", Run: runFig10},
	{ID: "parse", Title: "§6.5: document parsing time is negligible (paper: 314/355 µs)", Run: runParse},
	{ID: "sharing", Title: "Extension: what sharing buys — per-expression FSMs (XFilter) vs shared NFA (YFilter) vs shared predicates", Run: runSharing},
	{ID: "space", Title: "Extension: the whole solution space — predicate engine vs YFilter, XTrie, Index-Filter and XFilter", Run: runSpace},
	{ID: "pipeline", Title: "Extension: streaming pipeline throughput — sequential Match vs MatchBatch worker pool", Run: runPipeline},
	{ID: "cache", Title: "Extension: structural path-signature cache — match throughput cache-off vs cache-on across size bounds", Run: runCache},
	{ID: "columnar", Title: "Extension: columnar batch matcher — bitset-parallel expression matching vs the scalar loop, cache off", Run: runColumnar},
}

// ExperimentByID resolves an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

func progressf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// sweep measures the listed algorithms over workloads with varying
// expression counts. small marks experiments whose paper counts already
// fit a laptop (they only shrink under the smoke scale).
func sweep(d *dtd.DTD, counts []int, base WorkloadConfig, algos []Algorithm, s Scale, small bool, progress io.Writer) ([]Point, error) {
	var points []Point
	for _, n := range counts {
		cfg := base
		cfg.Docs = s.Docs
		if small {
			cfg.Exprs = s.smallExprs(n)
		} else {
			cfg.Exprs = s.exprs(n)
		}
		w, err := NewWorkload(d, cfg)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			r, err := Run(a, w)
			if err != nil {
				return nil, err
			}
			progressf(progress, "  %-14s N=%-9d filter=%v\n", a, cfg.Exprs, r.Filter)
			points = append(points, Point{Series: string(a), X: float64(cfg.Exprs), XLabel: "expressions", R: r})
		}
	}
	return points, nil
}

var fiveEngines = []Algorithm{AlgoBasic, AlgoPC, AlgoPCAP, AlgoYFilter, AlgoIndexFilter}

func runFig6a(s Scale, progress io.Writer) ([]Point, error) {
	base := DefaultWorkloadConfig(0)
	return sweep(dtd.NITF(), []int{25000, 50000, 75000, 100000, 125000}, base, fiveEngines, s, true, progress)
}

func runFig6b(s Scale, progress io.Writer) ([]Point, error) {
	base := DefaultWorkloadConfig(0)
	// PSD saturates around 10k distinct expressions (as in the paper);
	// keep counts within reach of the generator.
	return sweep(dtd.PSD(), []int{1000, 2500, 5000, 7500, 10000}, base, fiveEngines, s, true, progress)
}

func dupCounts() []int { return []int{500000, 1000000, 2000000, 3500000, 5000000} }

func runFig7(s Scale, progress io.Writer) ([]Point, error) {
	base := DefaultWorkloadConfig(0)
	base.Distinct = false
	return sweep(dtd.PSD(), dupCounts(), base, fiveEngines, s, false, progress)
}

func runFig7NITF(s Scale, progress io.Writer) ([]Point, error) {
	base := DefaultWorkloadConfig(0)
	base.Distinct = false
	return sweep(dtd.NITF(), dupCounts(), base, fiveEngines, s, false, progress)
}

// runFig8 varies one probability knob.
func runFig8(s Scale, progress io.Writer, wildcard bool, algos []Algorithm) ([]Point, error) {
	var points []Point
	probs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	for _, p := range probs {
		cfg := DefaultWorkloadConfig(s.exprs(2000000))
		cfg.Docs = s.Docs
		cfg.Distinct = false
		if wildcard {
			cfg.Wildcard = p
		} else {
			cfg.Descendant = p
		}
		w, err := NewWorkload(dtd.NITF(), cfg)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			r, err := Run(a, w)
			if err != nil {
				return nil, err
			}
			progressf(progress, "  %-14s p=%.1f filter=%v preds=%d\n", a, p, r.Filter, r.DistinctPreds)
			points = append(points, Point{Series: string(a), X: p, XLabel: "probability", R: r})
		}
	}
	return points, nil
}

func runFig8W(s Scale, progress io.Writer) ([]Point, error) {
	// The paper excludes Index-Filter from the wildcard sweep (§6.3): its
	// original description does not handle wildcards and the naive
	// interpretation blows up the index streams.
	return runFig8(s, progress, true, []Algorithm{AlgoPCAP, AlgoYFilter})
}

func runFig8DO(s Scale, progress io.Writer) ([]Point, error) {
	return runFig8(s, progress, false, []Algorithm{AlgoPCAP, AlgoYFilter, AlgoIndexFilter})
}

// runFig9 measures inline vs selection-postponed attribute filtering with
// 1 and 2 filters per expression, against YFilter's selection-postponed
// configuration.
func runFig9(d *dtd.DTD, s Scale, progress io.Writer) ([]Point, error) {
	var points []Point
	counts := []int{250000, 500000, 1000000, 2000000}
	for _, n := range counts {
		for _, filters := range []int{1, 2} {
			cfg := DefaultWorkloadConfig(s.exprs(n))
			cfg.Docs = s.Docs
			cfg.Distinct = false
			cfg.Filters = filters
			w, err := NewWorkload(d, cfg)
			if err != nil {
				return nil, err
			}
			for _, a := range []Algorithm{AlgoInline, AlgoPostponed, AlgoYFilter} {
				r, err := Run(a, w)
				if err != nil {
					return nil, err
				}
				series := fmt.Sprintf("%s-%d", a, filters)
				progressf(progress, "  %-14s N=%-9d filter=%v\n", series, cfg.Exprs, r.Filter)
				points = append(points, Point{Series: series, X: float64(cfg.Exprs), XLabel: "expressions", R: r})
			}
		}
	}
	return points, nil
}

func runFig9a(s Scale, progress io.Writer) ([]Point, error) {
	return runFig9(dtd.NITF(), s, progress)
}

func runFig9b(s Scale, progress io.Writer) ([]Point, error) {
	return runFig9(dtd.PSD(), s, progress)
}

func runFig10(s Scale, progress io.Writer) ([]Point, error) {
	var points []Point
	for _, n := range []int{1000000, 2000000, 3000000, 4000000, 5000000} {
		cfg := DefaultWorkloadConfig(s.exprs(n))
		cfg.Docs = s.Docs
		cfg.Distinct = false
		w, err := NewWorkload(dtd.NITF(), cfg)
		if err != nil {
			return nil, err
		}
		r, err := Run(AlgoPCAP, w)
		if err != nil {
			return nil, err
		}
		progressf(progress, "  N=%-9d pred=%v expr=%v other=%v distinct-preds=%d\n",
			cfg.Exprs, r.Pred, r.Expr, r.Other, r.DistinctPreds)
		points = append(points,
			Point{Series: "predicate-matching", X: float64(cfg.Exprs), XLabel: "expressions", R: withFilter(r, r.Pred)},
			Point{Series: "expression-matching", X: float64(cfg.Exprs), XLabel: "expressions", R: withFilter(r, r.Expr)},
			Point{Series: "other", X: float64(cfg.Exprs), XLabel: "expressions", R: withFilter(r, r.Other+r.Parse)},
		)
	}
	return points, nil
}

func withFilter(r Result, d time.Duration) Result {
	r.Filter = d
	return r
}

func runParse(s Scale, progress io.Writer) ([]Point, error) {
	var points []Point
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := DefaultWorkloadConfig(100)
		cfg.Docs = s.Docs
		w, err := NewWorkload(d, cfg)
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for _, raw := range w.Docs {
			t0 := time.Now()
			if _, err := xmldoc.Parse(raw); err != nil {
				return nil, err
			}
			total += time.Since(t0)
		}
		avg := total / time.Duration(len(w.Docs))
		progressf(progress, "  %-5s avg parse %v\n", d.Name, avg)
		points = append(points, Point{Series: d.Name, X: float64(s.Docs), XLabel: "documents", R: Result{Algorithm: "parse", Filter: avg}})
	}
	return points, nil
}

// runSharing contrasts the no-sharing XFilter baseline with the two
// sharing designs on the overlap-heavy NITF workload (§2's motivating
// comparison: "XFilter ... is not able to adequately handle overlap").
func runSharing(s Scale, progress io.Writer) ([]Point, error) {
	base := DefaultWorkloadConfig(0)
	return sweep(dtd.NITF(), []int{25000, 50000, 100000}, base,
		[]Algorithm{AlgoXFilterFSM, AlgoYFilter, AlgoPCAP}, s, true, progress)
}

// runSpace compares every implemented system from the paper's related
// work (§2) on both workload regimes, including XTrie — the system the
// paper's §2 notes YFilter "has been demonstrated to have better
// performance [than] on certain workloads".
func runSpace(s Scale, progress io.Writer) ([]Point, error) {
	algos := []Algorithm{AlgoPCAP, AlgoYFilter, AlgoXTrie, AlgoIndexFilter, AlgoXFilterFSM}
	base := DefaultWorkloadConfig(0)
	nitf, err := sweep(dtd.NITF(), []int{50000}, base, algos, s, true, progress)
	if err != nil {
		return nil, err
	}
	psd, err := sweep(dtd.PSD(), []int{10000}, base, algos, s, true, progress)
	if err != nil {
		return nil, err
	}
	for i := range nitf {
		nitf[i].Series = "nitf/" + nitf[i].Series
	}
	for i := range psd {
		psd[i].Series = "psd/" + psd[i].Series
	}
	return append(nitf, psd...), nil
}

// runTable1 renders Table 1 via the predicate index (also covered by
// predindex.TestTable1); it reports no timing series.
func runTable1(s Scale, progress io.Writer) ([]Point, error) {
	progressf(progress, "%s", Table1Text())
	return nil, nil
}

// PrintPoints renders points as an aligned text table, grouped by series.
func PrintPoints(w io.Writer, points []Point) {
	if len(points) == 0 {
		return
	}
	bySeries := make(map[string][]Point)
	var order []string
	for _, p := range points {
		if _, ok := bySeries[p.Series]; !ok {
			order = append(order, p.Series)
		}
		bySeries[p.Series] = append(bySeries[p.Series], p)
	}
	for _, series := range order {
		pts := bySeries[series]
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		fmt.Fprintf(w, "%s:\n", series)
		for _, p := range pts {
			fmt.Fprintf(w, "  %-12s %-12.4g filter=%-14v match%%=%-7.2f preds=%d\n",
				p.XLabel, p.X, p.R.Filter, 100*p.R.MatchedFrac, p.R.DistinctPreds)
		}
	}
}
