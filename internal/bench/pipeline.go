package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"predfilter"
	"predfilter/internal/dtd"
)

// PipelinePoint is one measured configuration of the streaming pipeline.
type PipelinePoint struct {
	Workers      int     `json:"workers"`
	DocsPerSec   float64 `json:"docs_per_sec"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	AllocsPerDoc float64 `json:"allocs_per_doc"`
	// EffectiveBatch is the measured documents per dispatch group
	// (stream jobs / stream batches over the interval) — the number that
	// decides whether the columnar batch matcher can engage. A backlogged
	// feed approaches Config.StreamBatch; a trickling one stays near 1.
	EffectiveBatch float64 `json:"effective_batch,omitempty"`
}

// PipelineReport compares the sequential one-document-at-a-time API with
// the MatchStream/MatchBatch worker pipeline on one workload. Docs/sec
// includes parsing, as the paper's filter time does. AllocsPerDoc is the
// runtime.MemStats.Mallocs delta per document — the allocation-overhaul
// regression number.
type PipelineReport struct {
	Scale      string          `json:"scale"`
	DTD        string          `json:"dtd"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Exprs      int             `json:"exprs"`
	Docs       int             `json:"docs"`
	Rounds     int             `json:"rounds"`
	Sequential PipelinePoint   `json:"sequential"`
	Stream     []PipelinePoint `json:"stream"`
	// Stages holds the engine's per-stage latency digests over the whole
	// run (warmups included); populated only with stage metrics requested
	// (xfbench -metrics).
	Stages map[string]StageSummary `json:"stages,omitempty"`
}

// RunPipeline measures sequential Match against MatchBatch at each worker
// count over a NITF workload. Rounds repeats the document set so that the
// measured interval is long enough to be meaningful at small scales. With
// stageMetrics set the report additionally carries the engine's per-stage
// latency digests.
func RunPipeline(s Scale, workers []int, progress io.Writer, stageMetrics bool) (*PipelineReport, error) {
	d := dtd.NITF()
	cfg := DefaultWorkloadConfig(s.exprs(50000))
	cfg.Docs = s.Docs
	w, err := NewWorkload(d, cfg)
	if err != nil {
		return nil, err
	}
	eng := predfilter.New(predfilter.Config{})
	for _, s := range w.XPEs {
		if _, err := eng.Add(s); err != nil {
			return nil, fmt.Errorf("bench: add %q: %w", s, err)
		}
	}

	rounds := 1
	for rounds*len(w.Docs) < 200 {
		rounds++
	}
	total := rounds * len(w.Docs)

	measure := func(run func() error) (docsPerSec, allocsPerDoc float64, err error) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			if err := run(); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)
		return float64(total) / elapsed.Seconds(),
			float64(m1.Mallocs-m0.Mallocs) / float64(total), nil
	}

	rep := &PipelineReport{
		Scale:      s.Name,
		DTD:        d.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Exprs:      len(w.XPEs),
		Docs:       len(w.Docs),
		Rounds:     rounds,
	}
	for _, n := range workers {
		if n > rep.GOMAXPROCS {
			progressf(progress, "  warning: %d workers but GOMAXPROCS=%d (NumCPU=%d); worker counts above GOMAXPROCS measure scheduling overhead, not parallelism\n",
				n, rep.GOMAXPROCS, rep.NumCPU)
			break
		}
	}

	seqDPS, seqAllocs, err := measure(func() error {
		for _, raw := range w.Docs {
			if _, err := eng.Match(raw); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Sequential = PipelinePoint{Workers: 1, DocsPerSec: seqDPS, Speedup: 1, AllocsPerDoc: seqAllocs}
	progressf(progress, "  sequential      %9.0f docs/sec  %6.0f allocs/doc\n", seqDPS, seqAllocs)

	for _, n := range workers {
		jobs0 := eng.Metrics().StreamJobs.Load()
		batches0 := eng.Metrics().StreamBatches.Load()
		dps, allocs, err := measure(func() error {
			for _, r := range eng.MatchBatch(w.Docs, n) {
				if r.Err != nil {
					return r.Err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		p := PipelinePoint{Workers: n, DocsPerSec: dps, Speedup: dps / seqDPS, AllocsPerDoc: allocs}
		if db := eng.Metrics().StreamBatches.Load() - batches0; db > 0 {
			p.EffectiveBatch = float64(eng.Metrics().StreamJobs.Load()-jobs0) / float64(db)
		}
		rep.Stream = append(rep.Stream, p)
		progressf(progress, "  stream w=%-4d   %9.0f docs/sec  %6.0f allocs/doc  %.2fx  batch=%.1f\n",
			n, dps, allocs, p.Speedup, p.EffectiveBatch)
	}
	if stageMetrics {
		rep.Stages = stageSummaries(eng)
	}
	return rep, nil
}

// runPipeline adapts RunPipeline to the experiment registry; the JSON
// report form is produced by cmd/xfbench.
func runPipeline(s Scale, progress io.Writer) ([]Point, error) {
	rep, err := RunPipeline(s, []int{1, 2, 4}, progress, false)
	if err != nil {
		return nil, err
	}
	toResult := func(p PipelinePoint) Result {
		return Result{
			Algorithm: "pipeline",
			Exprs:     rep.Exprs,
			Filter:    time.Duration(float64(time.Second) / p.DocsPerSec),
		}
	}
	points := []Point{{Series: "sequential", X: 1, XLabel: "workers", R: toResult(rep.Sequential)}}
	for _, p := range rep.Stream {
		points = append(points, Point{Series: "stream", X: float64(p.Workers), XLabel: "workers", R: toResult(p)})
	}
	return points, nil
}
