package bench

import (
	"testing"

	"predfilter/internal/dtd"
	"predfilter/internal/matcher"
	"predfilter/internal/predicate"
)

// TestWorkloadCalibration checks the synthetic DTDs land in the paper's
// workload regimes: NITF documents ≈140 tags / ≈9 KB with a low matched
// percentage (paper: ~6%), PSD with a high matched percentage (paper:
// ~75%). The bands here are deliberately generous — the point is the
// qualitative contrast that drives every §6 trade-off, not a particular
// decimal.
func TestWorkloadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("workload calibration is a slow statistics test")
	}
	nitfCfg := DefaultWorkloadConfig(2000)
	nitfCfg.Docs = 60
	nitf := MustWorkload(dtd.NITF(), nitfCfg)
	st, err := nitf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NITF docs: %+v", st)
	if st.AvgTags < 80 || st.AvgTags > 250 {
		t.Errorf("NITF avg tags = %.0f, want ≈140 (80..250)", st.AvgTags)
	}
	if st.AvgBytes < 2500 || st.AvgBytes > 20000 {
		t.Errorf("NITF avg bytes = %.0f, want ≈9000 (2.5k..20k)", st.AvgBytes)
	}

	rn, err := RunPredicate(matcher.PrefixCoverAP, predicate.Inline, nitf)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NITF: %s", rn)
	if rn.MatchedFrac > 0.2 {
		t.Errorf("NITF matched fraction = %.2f, want low (<0.2, paper ~0.06)", rn.MatchedFrac)
	}

	psdCfg := DefaultWorkloadConfig(1000)
	psdCfg.Docs = 60
	psd := MustWorkload(dtd.PSD(), psdCfg)
	rp, err := RunPredicate(matcher.PrefixCoverAP, predicate.Inline, psd)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PSD: %s", rp)
	if rp.MatchedFrac < 0.45 {
		t.Errorf("PSD matched fraction = %.2f, want high (>0.45)", rp.MatchedFrac)
	}
	if rp.MatchedFrac < rn.MatchedFrac*3 {
		t.Errorf("PSD match %% (%.2f) should dominate NITF match %% (%.2f)", rp.MatchedFrac, rn.MatchedFrac)
	}
}

// TestEnginesAgreeOnWorkload cross-checks all engines report identical
// match counts on a generated workload (structural only, so Index-Filter
// can participate).
func TestEnginesAgreeOnWorkload(t *testing.T) {
	for _, d := range []interface{ Name() string }{} {
		_ = d
	}
	for _, schema := range []string{"nitf", "psd"} {
		var w *Workload
		cfg := DefaultWorkloadConfig(300)
		cfg.Docs = 15
		if schema == "nitf" {
			w = MustWorkload(dtd.NITF(), cfg)
		} else {
			w = MustWorkload(dtd.PSD(), cfg)
		}
		var fracs []float64
		for _, a := range []Algorithm{AlgoBasic, AlgoPC, AlgoPCAP, AlgoYFilter, AlgoIndexFilter, AlgoXFilterFSM, AlgoXTrie} {
			r, err := Run(a, w)
			if err != nil {
				t.Fatalf("%s/%s: %v", schema, a, err)
			}
			fracs = append(fracs, r.MatchedFrac)
		}
		for i := 1; i < len(fracs); i++ {
			if fracs[i] != fracs[0] {
				t.Errorf("%s: engines disagree on matched fraction: %v", schema, fracs)
			}
		}
	}
}
