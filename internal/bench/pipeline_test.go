package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"predfilter/internal/dtd"
	"predfilter/internal/matcher"
	"predfilter/internal/predicate"
)

func equalSIDs(a, b []matcher.SID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[matcher.SID]int, len(a))
	for _, s := range a {
		seen[s]++
	}
	for _, s := range b {
		if seen[s] == 0 {
			return false
		}
		seen[s]--
	}
	return true
}

// TestParallelEquivalence is the property check for the sharded matching
// path: the same DTD-generated workload, with attribute filters, must
// produce identical SID sets through MatchDocument and
// MatchDocumentParallel under every organization, attribute mode and
// extension combination.
func TestParallelEquivalence(t *testing.T) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := DefaultWorkloadConfig(300)
		cfg.Docs = 6
		cfg.Filters = 1
		w, err := NewWorkload(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		docs, err := w.ParseDocs()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []matcher.Variant{matcher.Basic, matcher.PrefixCover, matcher.PrefixCoverAP} {
			for _, mode := range []predicate.AttrMode{predicate.Inline, predicate.Postponed} {
				for _, cm := range []matcher.CoverMode{matcher.PrefixOnly, matcher.Containment} {
					for _, cb := range []matcher.ClusterBy{matcher.FirstPredicate, matcher.RarestPredicate} {
						name := fmt.Sprintf("%s/%v/attr=%d/cover=%d/cluster=%d", d.Name, v, mode, cm, cb)
						t.Run(name, func(t *testing.T) {
							m := matcher.New(matcher.Options{Variant: v, AttrMode: mode, CoverMode: cm, ClusterBy: cb})
							for _, s := range w.XPEs {
								if _, err := m.Add(s); err != nil {
									t.Fatal(err)
								}
							}
							for i, doc := range docs {
								want := m.MatchDocument(doc)
								for _, workers := range []int{2, 5} {
									got := m.MatchDocumentParallel(doc, workers)
									if !equalSIDs(want, got) {
										t.Fatalf("doc %d workers %d: sequential %d sids, parallel %d sids",
											i, workers, len(want), len(got))
									}
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestRunPipeline smoke-tests the throughput report at the smallest scale.
func TestRunPipeline(t *testing.T) {
	s := Scale{Name: "test", Docs: 5, Factor: 0.002}
	rep, err := RunPipeline(s, []int{2}, io.Discard, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sequential.DocsPerSec <= 0 {
		t.Fatalf("sequential docs/sec %v", rep.Sequential.DocsPerSec)
	}
	if len(rep.Stream) != 1 || rep.Stream[0].Workers != 2 {
		t.Fatalf("stream points %+v", rep.Stream)
	}
	if rep.Stream[0].DocsPerSec <= 0 || rep.Stream[0].Speedup <= 0 {
		t.Fatalf("stream point %+v", rep.Stream[0])
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 || rep.Exprs < 100 {
		t.Fatalf("report metadata %+v", rep)
	}
	// stageMetrics=true: every document passed through both the sequential
	// and the streaming path, so each stage digest carries observations.
	for _, stage := range []string{"parse", "predicate_match", "occurrence", "match"} {
		if rep.Stages[stage].Count == 0 {
			t.Fatalf("stage %q has no observations: %+v", stage, rep.Stages)
		}
	}
	if rep.Stages["match"].P50us <= 0 || rep.Stages["match"].TotalMs <= 0 {
		t.Fatalf("match stage digest %+v", rep.Stages["match"])
	}
}

// TestRunPipelineOversubscriptionWarning checks the progress-stream warning
// when a worker count exceeds GOMAXPROCS.
func TestRunPipelineOversubscriptionWarning(t *testing.T) {
	s := Scale{Name: "test", Docs: 5, Factor: 0.002}
	var buf bytes.Buffer
	if _, err := RunPipeline(s, []int{runtime.GOMAXPROCS(0) + 1}, &buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "warning:") {
		t.Fatalf("no oversubscription warning in progress output:\n%s", buf.String())
	}
	buf.Reset()
	if _, err := RunPipeline(s, []int{1}, &buf, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "warning:") {
		t.Fatalf("unexpected warning for workers=1:\n%s", buf.String())
	}
}
