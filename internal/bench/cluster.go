package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"predfilter/internal/cluster"
	"predfilter/internal/dtd"
	"predfilter/internal/server"
)

// ClusterPoint is one measured shard count.
type ClusterPoint struct {
	Shards     int     `json:"shards"`
	DocsPerSec float64 `json:"docs_per_sec"`
	Speedup    float64 `json:"speedup_vs_one_shard"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// ClusterReport measures scatter/gather publish throughput and latency
// against the shard count: the same NITF workload filtered by one engine
// behind one listener, then split 2, 4, 8 ways behind a coordinator.
// Docs/sec counts coordinator publishes completed (each one fans out to
// every shard and merges); p50/p99 are per-publish wall latencies. All
// shards run in-process over loopback HTTP, so the numbers isolate the
// cluster machinery — ring routing, fan-out, gather merge, HTTP transport
// — from network variance.
type ClusterReport struct {
	Scale      string         `json:"scale"`
	DTD        string         `json:"dtd"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Exprs      int            `json:"exprs"`
	Docs       int            `json:"docs"`
	Rounds     int            `json:"rounds"`
	Publishers int            `json:"publishers"`
	Points     []ClusterPoint `json:"points"`
}

// shardProc is one in-process shard behind a real loopback listener.
type shardProc struct {
	srv  *server.Server
	hs   *http.Server
	addr string
}

func startShard() (*shardProc, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{})
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(l) }()
	return &shardProc{srv: srv, hs: hs, addr: "http://" + l.Addr().String()}, nil
}

func (p *shardProc) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = p.hs.Shutdown(ctx)
}

// RunCluster measures one workload at each shard count. Rounds repeats
// the document set until the measured interval covers at least 600
// publishes; publishers concurrent goroutines drive the coordinator, as
// independent clients would.
func RunCluster(s Scale, shardCounts []int, progress io.Writer) (*ClusterReport, error) {
	// A big expression set makes per-document match time dominate the
	// duplicated per-shard parse and the HTTP hop — the regime sharding
	// exists for (a small set fits one engine; nobody shards it).
	d := dtd.NITF()
	cfg := DefaultWorkloadConfig(s.exprs(400000))
	cfg.Docs = s.Docs
	cfg.Filters = 1
	w, err := NewWorkload(d, cfg)
	if err != nil {
		return nil, err
	}
	// A long measured interval (≥600 publishes) rides out scheduler and
	// GC noise, which at a few milliseconds per publish otherwise swamps
	// the comparison between shard counts.
	rounds := 1
	for rounds*len(w.Docs) < 600 {
		rounds++
	}
	// Scaling comes from the scatter: each publish fans its matching work
	// out over the shards, so one in-flight document recruits up to N
	// cores instead of one. That only shows when the publishers leave
	// cores idle for the fan-out to claim — a publisher pool that already
	// saturates the machine measures pure fan-out overhead instead. Use a
	// quarter of the cores (≥1), leaving headroom for 4-way sharding.
	publishers := runtime.GOMAXPROCS(0) / 4
	if publishers < 1 {
		publishers = 1
	}
	rep := &ClusterReport{
		Scale:      s.Name,
		DTD:        d.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Exprs:      len(w.XPEs),
		Docs:       len(w.Docs),
		Rounds:     rounds,
		Publishers: publishers,
	}

	for _, n := range shardCounts {
		pt, err := runClusterPoint(w, n, rounds, publishers)
		if err != nil {
			return nil, fmt.Errorf("bench: %d shards: %w", n, err)
		}
		if len(rep.Points) > 0 {
			pt.Speedup = pt.DocsPerSec / rep.Points[0].DocsPerSec
		} else {
			pt.Speedup = 1
		}
		rep.Points = append(rep.Points, pt)
		progressf(progress, "  %d shard(s)   %9.0f docs/sec  p50 %.2fms  p99 %.2fms  speedup %.2fx\n",
			n, pt.DocsPerSec, pt.P50Ms, pt.P99Ms, pt.Speedup)
	}
	return rep, nil
}

func runClusterPoint(w *Workload, shards, rounds, publishers int) (ClusterPoint, error) {
	var pt ClusterPoint
	pt.Shards = shards

	procs := make([]*shardProc, shards)
	specs := make([]cluster.ShardSpec, shards)
	for i := range procs {
		p, err := startShard()
		if err != nil {
			return pt, err
		}
		defer p.stop()
		procs[i] = p
		specs[i] = cluster.ShardSpec{Name: fmt.Sprintf("shard-%d", i), Addr: p.addr}
	}
	coord, err := cluster.New(cluster.Config{Shards: specs})
	if err != nil {
		return pt, err
	}
	defer coord.Close()

	ctx := context.Background()
	for _, xpe := range w.XPEs {
		if _, err := coord.Subscribe(ctx, xpe); err != nil {
			return pt, fmt.Errorf("subscribe: %w", err)
		}
	}

	// Warm connections and caches with one pass, then let the garbage
	// from the registration phase (one engine build per shard) get
	// collected outside the measured interval.
	for _, doc := range w.Docs {
		if _, err := coord.Publish(ctx, doc); err != nil {
			return pt, err
		}
	}
	runtime.GC()

	total := rounds * len(w.Docs)
	jobs := make(chan []byte, total)
	for r := 0; r < rounds; r++ {
		for _, doc := range w.Docs {
			jobs <- doc
		}
	}
	close(jobs)

	lats := make([][]time.Duration, publishers)
	errs := make([]error, publishers)
	var wg sync.WaitGroup
	wg.Add(publishers)
	t0 := time.Now()
	for i := 0; i < publishers; i++ {
		go func(i int) {
			defer wg.Done()
			for doc := range jobs {
				d0 := time.Now()
				res, err := coord.Publish(ctx, doc)
				if err != nil {
					errs[i] = err
					return
				}
				if res.Degraded {
					errs[i] = fmt.Errorf("degraded publish with all shards up (skipped %v)", res.Skipped)
					return
				}
				lats[i] = append(lats[i], time.Since(d0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pt.DocsPerSec = float64(total) / elapsed.Seconds()
	pt.P50Ms = float64(percentileDur(all, 0.50)) / 1e6
	pt.P99Ms = float64(percentileDur(all, 0.99)) / 1e6
	return pt, nil
}

// percentileDur returns the p-quantile of sorted durations (nearest-rank).
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
