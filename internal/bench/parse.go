package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"predfilter/internal/dtd"
	"predfilter/internal/guard"
	"predfilter/internal/xmldoc"
)

// ParsePoint is one parser configuration measured over one DTD's corpus.
type ParsePoint struct {
	DTD          string  `json:"dtd"`
	Parser       string  `json:"parser"` // "scan" or "stdlib"
	DocsPerSec   float64 `json:"docs_per_sec"`
	AllocsPerDoc float64 `json:"allocs_per_doc"`
}

// ParseComparison summarizes one DTD: the zero-copy scanner against
// encoding/xml on the same documents.
type ParseComparison struct {
	DTD        string  `json:"dtd"`
	Speedup    float64 `json:"speedup"`     // scan docs/sec over stdlib docs/sec
	AllocRatio float64 `json:"alloc_ratio"` // stdlib allocs/doc over scan allocs/doc
}

// ParseReport compares the two document parsers (internal/xmlscan's
// zero-copy scanner vs encoding/xml) on the generated corpora of both
// DTDs. Parsing here is xmldoc parsing only — no expression matching —
// so the numbers isolate the stage the scanner replaces.
type ParseReport struct {
	Scale      string            `json:"scale"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Docs       int               `json:"docs"`
	Rounds     int               `json:"rounds"`
	Points     []ParsePoint      `json:"points"`
	Comparison []ParseComparison `json:"comparison"`
}

// RunParse measures parse-only throughput and allocation cost of the
// scanner fast path against encoding/xml, per DTD. Rounds repeats the
// document set so the measured interval is long enough at small scales.
func RunParse(s Scale, progress io.Writer) (*ParseReport, error) {
	rep := &ParseReport{
		Scale:      s.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := DefaultWorkloadConfig(1000)
		cfg.Docs = s.Docs
		w, err := NewWorkload(d, cfg)
		if err != nil {
			return nil, err
		}
		rounds := 1
		for rounds*len(w.Docs) < 500 {
			rounds++
		}
		total := rounds * len(w.Docs)
		rep.Docs = len(w.Docs)
		rep.Rounds = rounds

		measure := func(mode xmldoc.Mode) (docsPerSec, allocsPerDoc float64, err error) {
			// One warm-up pass sizes the pooled scratch and interns the
			// corpus vocabulary before the measured interval.
			for _, raw := range w.Docs {
				if _, err := xmldoc.ParseLimitsMode(raw, guard.Limits{}, mode); err != nil {
					return 0, 0, fmt.Errorf("bench: parse %s: %w", d.Name, err)
				}
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for r := 0; r < rounds; r++ {
				for _, raw := range w.Docs {
					if _, err := xmldoc.ParseLimitsMode(raw, guard.Limits{}, mode); err != nil {
						return 0, 0, fmt.Errorf("bench: parse %s: %w", d.Name, err)
					}
				}
			}
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&m1)
			return float64(total) / elapsed.Seconds(),
				float64(m1.Mallocs-m0.Mallocs) / float64(total), nil
		}

		scanDPS, scanAllocs, err := measure(xmldoc.ModeScan)
		if err != nil {
			return nil, err
		}
		stdDPS, stdAllocs, err := measure(xmldoc.ModeStd)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points,
			ParsePoint{DTD: d.Name, Parser: "scan", DocsPerSec: scanDPS, AllocsPerDoc: scanAllocs},
			ParsePoint{DTD: d.Name, Parser: "stdlib", DocsPerSec: stdDPS, AllocsPerDoc: stdAllocs},
		)
		cmp := ParseComparison{DTD: d.Name, Speedup: scanDPS / stdDPS}
		if scanAllocs > 0 {
			cmp.AllocRatio = stdAllocs / scanAllocs
		}
		rep.Comparison = append(rep.Comparison, cmp)
		progressf(progress, "  %-5s scan   %9.0f docs/sec  %7.1f allocs/doc\n", d.Name, scanDPS, scanAllocs)
		progressf(progress, "  %-5s stdlib %9.0f docs/sec  %7.1f allocs/doc  (scan %.2fx faster, %.0fx fewer allocs)\n",
			d.Name, stdDPS, stdAllocs, cmp.Speedup, cmp.AllocRatio)
	}
	return rep, nil
}
