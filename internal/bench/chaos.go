package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"predfilter/internal/cluster"
	"predfilter/internal/dtd"
	"predfilter/internal/faultnet"
)

// ChaosScenario is one fault pattern measured end to end: publish
// latency while healthy, while the fault is active (for the partition
// scenario, after the breaker has opened — the steady state the breaker
// buys), the degraded rate, breaker activity, and the time from heal to
// the first whole publish.
type ChaosScenario struct {
	Name string `json:"name"`
	// Healthy publish latency through the transparent proxy.
	HealthyP50Ms float64 `json:"healthy_p50_ms"`
	HealthyP99Ms float64 `json:"healthy_p99_ms"`
	// TripMs is how long the fault ran before the breaker opened
	// (partition scenario; 0 when the breaker never opened).
	TripMs float64 `json:"trip_ms"`
	// Fault-steady-state publish latency: after the breaker opened for
	// the partition scenario, across the whole fault window otherwise.
	FaultP50Ms float64 `json:"fault_p50_ms"`
	FaultP99Ms float64 `json:"fault_p99_ms"`
	// FaultPublishes and Degraded count the fault window's publishes and
	// how many of them lost a shard.
	FaultPublishes int     `json:"fault_publishes"`
	Degraded       int     `json:"degraded"`
	DegradedRate   float64 `json:"degraded_rate"`
	BreakerOpens   int64   `json:"breaker_opens"`
	FastFails      int64   `json:"fast_fails"`
	// RecoverMs is heal → first non-degraded publish (includes the
	// breaker cooldown and half-open probe).
	RecoverMs float64 `json:"recover_ms"`
}

// ChaosReport measures the cluster's fault behavior through the
// deterministic faultnet proxy: a two-shard cluster with one shard
// behind the proxy, driven through partition, flap, and slow-link
// scenarios. The shapes are the reproduction target: an open breaker
// must hold faulted publish latency near the healthy baseline (the
// partition scenario's fault p99 vs healthy p99), a flapping link must
// not open the breaker at all, and a slow link must degrade latency but
// nothing else.
type ChaosReport struct {
	Scale             string          `json:"scale"`
	DTD               string          `json:"dtd"`
	Exprs             int             `json:"exprs"`
	Docs              int             `json:"docs"`
	PublishTimeoutMs  float64         `json:"publish_timeout_ms"`
	BreakerThreshold  int             `json:"breaker_threshold"`
	BreakerCooldownMs float64         `json:"breaker_cooldown_ms"`
	Scenarios         []ChaosScenario `json:"scenarios"`
}

const (
	chaosPublishTimeout  = 250 * time.Millisecond
	chaosBreakerThresh   = 3
	chaosBreakerCooldown = 200 * time.Millisecond
	chaosHealthyCount    = 200
	chaosFaultCount      = 150
)

// RunChaos measures every scenario and returns the report.
func RunChaos(s Scale, progress io.Writer) (*ChaosReport, error) {
	d := dtd.NITF()
	cfg := DefaultWorkloadConfig(s.exprs(2000))
	cfg.Docs = s.Docs
	cfg.Filters = 1
	w, err := NewWorkload(d, cfg)
	if err != nil {
		return nil, err
	}
	rep := &ChaosReport{
		Scale:             s.Name,
		DTD:               d.Name,
		Exprs:             len(w.XPEs),
		Docs:              len(w.Docs),
		PublishTimeoutMs:  float64(chaosPublishTimeout) / 1e6,
		BreakerThreshold:  chaosBreakerThresh,
		BreakerCooldownMs: float64(chaosBreakerCooldown) / 1e6,
	}
	for _, name := range []string{"partition", "flap", "slow"} {
		sc, err := runChaosScenario(w, name)
		if err != nil {
			return nil, fmt.Errorf("bench: chaos %s: %w", name, err)
		}
		rep.Scenarios = append(rep.Scenarios, sc)
		progressf(progress,
			"  %-9s healthy p99 %.2fms  fault p99 %.2fms  degraded %d/%d  opens %d  recover %.0fms\n",
			name, sc.HealthyP99Ms, sc.FaultP99Ms, sc.Degraded, sc.FaultPublishes, sc.BreakerOpens, sc.RecoverMs)
	}
	return rep, nil
}

func runChaosScenario(w *Workload, name string) (ChaosScenario, error) {
	sc := ChaosScenario{Name: name}

	procs := make([]*shardProc, 2)
	for i := range procs {
		p, err := startShard()
		if err != nil {
			return sc, err
		}
		defer p.stop()
		procs[i] = p
	}
	px, err := faultnet.New(strings.TrimPrefix(procs[1].addr, "http://"))
	if err != nil {
		return sc, err
	}
	defer px.Close()

	coord, err := cluster.New(cluster.Config{
		Shards: []cluster.ShardSpec{
			{Name: "shard-0", Addr: procs[0].addr},
			{Name: "shard-1", Addr: px.URL()},
		},
		PublishTimeout:   chaosPublishTimeout,
		Retries:          -1,
		BreakerThreshold: chaosBreakerThresh,
		BreakerCooldown:  chaosBreakerCooldown,
	})
	if err != nil {
		return sc, err
	}
	defer coord.Close()

	ctx := context.Background()
	for _, xpe := range w.XPEs {
		if _, err := coord.Subscribe(ctx, xpe); err != nil {
			return sc, fmt.Errorf("subscribe: %w", err)
		}
	}

	publish := func(n int) (lats []time.Duration, degraded int, err error) {
		for i := 0; i < n; i++ {
			doc := w.Docs[i%len(w.Docs)]
			t0 := time.Now()
			res, err := coord.Publish(ctx, doc)
			if err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(t0))
			if res.Degraded {
				degraded++
			}
		}
		return lats, degraded, nil
	}
	breakerOf := func(shard string) cluster.ShardStats {
		for _, sh := range coord.Stats().PerShard {
			if sh.Name == shard {
				return sh
			}
		}
		return cluster.ShardStats{}
	}

	// Warm pass (connections, per-shard engines), then the healthy
	// baseline.
	if _, _, err := publish(len(w.Docs)); err != nil {
		return sc, err
	}
	healthy, degraded, err := publish(chaosHealthyCount)
	if err != nil {
		return sc, err
	}
	if degraded > 0 {
		return sc, fmt.Errorf("degraded publishes with the proxy transparent")
	}
	sc.HealthyP50Ms, sc.HealthyP99Ms = latQuantilesMs(healthy)

	// The fault window.
	var fault []time.Duration
	switch name {
	case "partition":
		// Partition, publish until the breaker opens (TripMs), then the
		// steady state the breaker buys: fast degraded publishes.
		px.Partition()
		t0 := time.Now()
		for breakerOf("shard-1").Breaker != "open" {
			l, d, err := publish(1)
			if err != nil {
				return sc, err
			}
			sc.FaultPublishes += len(l)
			sc.Degraded += d
			if sc.FaultPublishes > 5*chaosBreakerThresh {
				return sc, fmt.Errorf("breaker never opened under partition")
			}
		}
		sc.TripMs = float64(time.Since(t0)) / 1e6
		l, d, err := publish(chaosFaultCount)
		if err != nil {
			return sc, err
		}
		fault = l
		sc.FaultPublishes += len(l)
		sc.Degraded += d
	case "flap":
		// Fail, recover before the threshold, fail again: the breaker must
		// ride it out closed. Each segment's publish count stays under the
		// threshold.
		for cycle := 0; cycle < 4; cycle++ {
			px.Partition()
			l, d, err := publish(chaosBreakerThresh - 1)
			if err != nil {
				return sc, err
			}
			fault = append(fault, l...)
			sc.FaultPublishes += len(l)
			sc.Degraded += d
			px.Heal()
			l, d, err = publish(chaosBreakerThresh - 1)
			if err != nil {
				return sc, err
			}
			fault = append(fault, l...)
			sc.FaultPublishes += len(l)
			sc.Degraded += d
		}
	case "slow":
		// A slow link, not a dead one: added connection latency inside the
		// publish timeout. Publishes stay whole, only slower; the breaker
		// must not open on slowness alone.
		px.SetRules(faultnet.Rules{Latency: 30 * time.Millisecond})
		px.CutConns() // force new, latency-bearing connections
		l, d, err := publish(chaosFaultCount / 3)
		if err != nil {
			return sc, err
		}
		fault = l
		sc.FaultPublishes = len(l)
		sc.Degraded = d
	default:
		return sc, fmt.Errorf("unknown scenario %q", name)
	}
	sc.FaultP50Ms, sc.FaultP99Ms = latQuantilesMs(fault)
	if sc.FaultPublishes > 0 {
		sc.DegradedRate = float64(sc.Degraded) / float64(sc.FaultPublishes)
	}
	st := breakerOf("shard-1")
	sc.BreakerOpens = st.BreakerOpens
	sc.FastFails = st.FastFails

	// Heal and measure the time back to a whole publish.
	px.Heal()
	t0 := time.Now()
	for {
		res, err := coord.Publish(ctx, w.Docs[0])
		if err != nil {
			return sc, err
		}
		if !res.Degraded {
			break
		}
		if time.Since(t0) > 30*time.Second {
			return sc, fmt.Errorf("cluster never recovered after heal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sc.RecoverMs = float64(time.Since(t0)) / 1e6
	return sc, nil
}

func latQuantilesMs(lats []time.Duration) (p50, p99 float64) {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return float64(percentileDur(sorted, 0.50)) / 1e6, float64(percentileDur(sorted, 0.99)) / 1e6
}
