package bench

import (
	"fmt"
	"strings"

	"predfilter/internal/predicate"
	"predfilter/internal/predindex"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// Table1Index returns a predicate index loaded with the Table 1
// expressions (a//b/c and c//b//a); used by micro-benchmarks.
func Table1Index() *predindex.Index {
	ix := predindex.New()
	for _, s := range []string{"a//b/c", "c//b//a"} {
		for _, p := range predicate.MustEncode(xpath.MustParse(s), predicate.Inline).Preds {
			ix.Insert(p)
		}
	}
	return ix
}

// Table1Text renders Table 1 of the paper: the per-predicate matching
// results of the expressions a//b/c and c//b//a over the document path
// (a, b, c, a, b, c), annotated with occurrence numbers.
func Table1Text() string {
	var b strings.Builder
	ix := predindex.New()
	type row struct {
		xpe  string
		pids []predindex.PID
	}
	var rows []row
	for _, s := range []string{"a//b/c", "c//b//a"} {
		enc := predicate.MustEncode(xpath.MustParse(s), predicate.Inline)
		pids := make([]predindex.PID, len(enc.Preds))
		for i, p := range enc.Preds {
			pids[i] = ix.Insert(p)
		}
		rows = append(rows, row{xpe: s, pids: pids})
	}
	doc := xmldoc.FromPaths([]string{"a", "b", "c", "a", "b", "c"})
	res := predindex.NewResults(ix.Len())
	res.Reset(ix.Len())
	ix.MatchPath(&doc.Paths[0], res)

	fmt.Fprintf(&b, "document path: (a^1, b^1, c^1, a^2, b^2, c^2)\n")
	fmt.Fprintf(&b, "%-10s %-24s %s\n", "XPE", "Predicate", "Matching results (occurrence pairs)")
	for _, r := range rows {
		for i, pid := range r.pids {
			name := ""
			if i == 0 {
				name = r.xpe
			}
			var pairs []string
			for _, pr := range res.Get(pid) {
				pairs = append(pairs, fmt.Sprintf("(%d,%d)", pr.A, pr.B))
			}
			fmt.Fprintf(&b, "%-10s %-24s %s\n", name, ix.Pred(pid).String(), strings.Join(pairs, ", "))
		}
	}
	return b.String()
}
