package bench

import (
	"testing"

	"predfilter/internal/dtd"
	"predfilter/internal/matcher"
	"predfilter/internal/predicate"
	"predfilter/internal/refmatch"
	"predfilter/internal/xpath"
)

// TestWorkloadScaleOracle cross-validates the predicate engine against
// the reference matcher on real generated workloads — schema-valid
// expressions over schema-valid documents, both DTDs, with and without
// attribute filters. This complements the small-alphabet randomized
// equivalence tests in internal/matcher with realistic tag vocabularies,
// depths and attribute distributions.
func TestWorkloadScaleOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("workload-scale oracle is slow")
	}
	for _, schema := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		for _, filters := range []int{0, 1} {
			cfg := DefaultWorkloadConfig(400)
			cfg.Docs = 6
			cfg.Filters = filters
			w := MustWorkload(schema, cfg)
			docs, err := w.ParseDocs()
			if err != nil {
				t.Fatal(err)
			}
			paths := make([]*xpath.Path, len(w.XPEs))
			for i, s := range w.XPEs {
				paths[i] = xpath.MustParse(s)
			}
			for _, opts := range []matcher.Options{
				{Variant: matcher.PrefixCoverAP, AttrMode: predicate.Inline},
				{Variant: matcher.PrefixCoverAP, AttrMode: predicate.Postponed},
				{Variant: matcher.Basic, AttrMode: predicate.Inline},
			} {
				m := matcher.New(opts)
				sids := make([]matcher.SID, len(w.XPEs))
				for i, s := range w.XPEs {
					sid, err := m.Add(s)
					if err != nil {
						t.Fatalf("%s: Add(%q): %v", schema.Name, s, err)
					}
					sids[i] = sid
				}
				for di, doc := range docs {
					got := make(map[matcher.SID]bool)
					for _, sid := range m.MatchDocument(doc) {
						got[sid] = true
					}
					for i, p := range paths {
						want := refmatch.Match(p, doc)
						if got[sids[i]] != want {
							t.Fatalf("%s filters=%d doc=%d %+v: %q matched=%v, ref=%v",
								schema.Name, filters, di, opts, w.XPEs[i], got[sids[i]], want)
						}
					}
				}
			}
		}
	}
}

// TestBaselinesWorkloadScaleOracle does the same for YFilter and
// Index-Filter on structural workloads.
func TestBaselinesWorkloadScaleOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("workload-scale oracle is slow")
	}
	for _, schema := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := DefaultWorkloadConfig(400)
		cfg.Docs = 6
		w := MustWorkload(schema, cfg)
		for _, algo := range []Algorithm{AlgoYFilter, AlgoIndexFilter} {
			r1, err := Run(algo, w)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(AlgoPCAP, w)
			if err != nil {
				t.Fatal(err)
			}
			if r1.MatchedFrac != r2.MatchedFrac {
				t.Errorf("%s/%s: matched fraction %v vs %v", schema.Name, algo, r1.MatchedFrac, r2.MatchedFrac)
			}
		}
	}
}
