package bench

import (
	"io"
	"strings"
	"testing"
)

// TestExperimentRegistry checks ids resolve and are unique.
func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ExperimentByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ExperimentByID(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("ExperimentByID accepted an unknown id")
	}
	// Every figure and table of §6 must be covered.
	for _, id := range []string{"table1", "fig6a", "fig6b", "fig7", "fig8w", "fig8do", "fig9a", "fig9b", "fig10", "parse"} {
		if !seen[id] {
			t.Errorf("experiment %q missing from the registry", id)
		}
	}
}

// TestExperimentsSmoke runs every experiment end-to-end at the smoke
// scale: each must produce points (table1 produces text instead) and all
// timings must be positive.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke-running all experiments is slow")
	}
	tiny := Scale{Name: "smoke", Docs: 4, Factor: 0.001}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			points, err := e.Run(tiny, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if e.ID == "table1" {
				if len(points) != 0 {
					t.Fatalf("table1 produced %d points", len(points))
				}
				return
			}
			if len(points) == 0 {
				t.Fatal("no points")
			}
			for _, p := range points {
				if p.Series == "" {
					t.Errorf("point without series: %+v", p)
				}
				if p.R.Filter <= 0 {
					t.Errorf("%s: non-positive filter time %v", p.Series, p.R.Filter)
				}
			}
		})
	}
}

// TestScaleByName covers the scale presets.
func TestScaleByName(t *testing.T) {
	for _, name := range []string{"smoke", "default", "full", ""} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
		if s.Docs <= 0 || s.Factor <= 0 {
			t.Errorf("ScaleByName(%q) = %+v", name, s)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("ScaleByName accepted an unknown scale")
	}
}

// TestTable1Text checks the rendered table contains the paper's rows.
func TestTable1Text(t *testing.T) {
	text := Table1Text()
	for _, want := range []string{
		"(d(p_a, p_b), >=, 1)", "(1,1), (1,2), (2,2)",
		"(d(p_b, p_c), =, 1)", "(1,1), (2,2)",
		"(d(p_c, p_b), >=, 1)", "(1,2)",
		"(d(p_b, p_a), >=, 1)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1Text missing %q:\n%s", want, text)
		}
	}
}

// TestPrintPoints covers the renderer.
func TestPrintPoints(t *testing.T) {
	var sb strings.Builder
	PrintPoints(&sb, []Point{
		{Series: "b", X: 2, XLabel: "expressions", R: Result{Filter: 5}},
		{Series: "a", X: 1, XLabel: "expressions", R: Result{Filter: 3}},
		{Series: "b", X: 1, XLabel: "expressions", R: Result{Filter: 4}},
	})
	out := sb.String()
	if !strings.Contains(out, "b:") || !strings.Contains(out, "a:") {
		t.Errorf("missing series headers:\n%s", out)
	}
	if strings.Index(out, "b:") > strings.Index(out, "a:") {
		t.Errorf("series not in first-seen order:\n%s", out)
	}
	PrintPoints(&sb, nil) // must not panic
}
