package bench

import (
	"fmt"
	"time"

	"predfilter/internal/fsmfilter"
	"predfilter/internal/indexfilter"
	"predfilter/internal/matcher"
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xtrie"
	"predfilter/internal/yfilter"
)

// Algorithm names one engine configuration, in the paper's terminology.
type Algorithm string

// The algorithm configurations evaluated in §6.
const (
	AlgoBasic       Algorithm = "basic"
	AlgoPC          Algorithm = "basic-pc"
	AlgoPCAP        Algorithm = "basic-pc-ap"
	AlgoInline      Algorithm = "inline"       // basic-pc-ap with inline attribute filters
	AlgoPostponed   Algorithm = "sp"           // basic-pc-ap with selection-postponed filters
	AlgoYFilter     Algorithm = "yfilter"      // structural / selection-postponed NFA baseline
	AlgoIndexFilter Algorithm = "index-filter" // index-based baseline
	AlgoXFilterFSM  Algorithm = "xfilter-fsm"  // per-expression FSM (XFilter), no sharing
	AlgoXTrie       Algorithm = "xtrie"        // substring-trie baseline (XTrie)
)

// Result is one measured series point.
type Result struct {
	Algorithm Algorithm
	Exprs     int // registered expressions (with duplicates)

	// Per-document averages; Filter includes document parsing, matching
	// and result collection, as in the paper.
	Filter time.Duration
	Parse  time.Duration // parsing/encoding share (predicate engine only)
	Pred   time.Duration // predicate matching share (predicate engine only)
	Expr   time.Duration // expression matching share (predicate engine only)
	Other  time.Duration // result collection share (predicate engine only)

	// MatchedFrac is the average fraction of expressions matched per
	// document (the paper's "percentage of matched expressions").
	MatchedFrac float64

	// DistinctPreds is the predicate count of the shared index (predicate
	// engine only; the Figure 10 series).
	DistinctPreds int

	// Build is the total time to register all expressions (not part of
	// filter time, reported for completeness).
	Build time.Duration
}

func (r Result) String() string {
	return fmt.Sprintf("%-12s N=%-8d filter=%-12s match%%=%5.1f", r.Algorithm, r.Exprs, r.Filter, 100*r.MatchedFrac)
}

// RunPredicate measures one predicate-engine configuration over the
// workload.
func RunPredicate(variant matcher.Variant, mode predicate.AttrMode, w *Workload) (Result, error) {
	algo := Algorithm(variant.String())
	m := matcher.New(matcher.Options{Variant: variant, AttrMode: mode})
	b0 := time.Now()
	for _, s := range w.XPEs {
		if _, err := m.Add(s); err != nil {
			return Result{}, fmt.Errorf("bench: add %q: %w", s, err)
		}
	}
	build := time.Since(b0)

	var res Result
	var matched float64
	for _, raw := range w.Docs {
		t0 := time.Now()
		doc, err := xmldoc.Parse(raw)
		if err != nil {
			return Result{}, err
		}
		t1 := time.Now()
		sids, bd := m.MatchDocumentBreakdown(doc)
		t2 := time.Now()
		res.Parse += t1.Sub(t0)
		res.Filter += t2.Sub(t0)
		res.Pred += bd.PredMatch
		res.Expr += bd.ExprMatch
		res.Other += bd.Other
		matched += float64(len(sids))
	}
	n := time.Duration(len(w.Docs))
	res.Algorithm = algo
	res.Exprs = len(w.XPEs)
	res.Filter /= n
	res.Parse /= n
	res.Pred /= n
	res.Expr /= n
	res.Other /= n
	res.MatchedFrac = matched / float64(len(w.Docs)) / float64(len(w.XPEs))
	res.DistinctPreds = m.Stats().DistinctPredicates
	res.Build = build
	return res, nil
}

// RunYFilter measures the YFilter baseline over the workload.
func RunYFilter(w *Workload) (Result, error) {
	e := yfilter.New()
	b0 := time.Now()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			return Result{}, fmt.Errorf("bench: yfilter add %q: %w", s, err)
		}
	}
	build := time.Since(b0)

	var res Result
	var matched float64
	for _, raw := range w.Docs {
		t0 := time.Now()
		sids, err := e.Filter(raw)
		if err != nil {
			return Result{}, err
		}
		res.Filter += time.Since(t0)
		matched += float64(len(sids))
	}
	res.Algorithm = AlgoYFilter
	res.Exprs = len(w.XPEs)
	res.Filter /= time.Duration(len(w.Docs))
	res.MatchedFrac = matched / float64(len(w.Docs)) / float64(len(w.XPEs))
	res.Build = build
	return res, nil
}

// RunIndexFilter measures the Index-Filter baseline over the workload.
func RunIndexFilter(w *Workload) (Result, error) {
	e := indexfilter.New()
	b0 := time.Now()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			return Result{}, fmt.Errorf("bench: index-filter add %q: %w", s, err)
		}
	}
	build := time.Since(b0)

	var res Result
	var matched float64
	for _, raw := range w.Docs {
		t0 := time.Now()
		sids, err := e.Filter(raw)
		if err != nil {
			return Result{}, err
		}
		res.Filter += time.Since(t0)
		matched += float64(len(sids))
	}
	res.Algorithm = AlgoIndexFilter
	res.Exprs = len(w.XPEs)
	res.Filter /= time.Duration(len(w.Docs))
	res.MatchedFrac = matched / float64(len(w.Docs)) / float64(len(w.XPEs))
	res.Build = build
	return res, nil
}

// RunXFilterFSM measures the XFilter (per-expression FSM) baseline over
// the workload; it exists to quantify what expression sharing buys the
// other engines.
func RunXFilterFSM(w *Workload) (Result, error) {
	e := fsmfilter.New()
	b0 := time.Now()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			return Result{}, fmt.Errorf("bench: xfilter-fsm add %q: %w", s, err)
		}
	}
	build := time.Since(b0)

	var res Result
	var matched float64
	for _, raw := range w.Docs {
		t0 := time.Now()
		sids, err := e.Filter(raw)
		if err != nil {
			return Result{}, err
		}
		res.Filter += time.Since(t0)
		matched += float64(len(sids))
	}
	res.Algorithm = AlgoXFilterFSM
	res.Exprs = len(w.XPEs)
	res.Filter /= time.Duration(len(w.Docs))
	res.MatchedFrac = matched / float64(len(w.Docs)) / float64(len(w.XPEs))
	res.Build = build
	return res, nil
}

// RunXTrie measures the XTrie baseline over the workload.
func RunXTrie(w *Workload) (Result, error) {
	e := xtrie.New()
	b0 := time.Now()
	for _, s := range w.XPEs {
		if _, err := e.Add(s); err != nil {
			return Result{}, fmt.Errorf("bench: xtrie add %q: %w", s, err)
		}
	}
	build := time.Since(b0)

	var res Result
	var matched float64
	for _, raw := range w.Docs {
		t0 := time.Now()
		sids, err := e.Filter(raw)
		if err != nil {
			return Result{}, err
		}
		res.Filter += time.Since(t0)
		matched += float64(len(sids))
	}
	res.Algorithm = AlgoXTrie
	res.Exprs = len(w.XPEs)
	res.Filter /= time.Duration(len(w.Docs))
	res.MatchedFrac = matched / float64(len(w.Docs)) / float64(len(w.XPEs))
	res.Build = build
	return res, nil
}

// Run dispatches on the algorithm name.
func Run(a Algorithm, w *Workload) (Result, error) {
	switch a {
	case AlgoBasic:
		return RunPredicate(matcher.Basic, predicate.Inline, w)
	case AlgoPC:
		return RunPredicate(matcher.PrefixCover, predicate.Inline, w)
	case AlgoPCAP:
		return RunPredicate(matcher.PrefixCoverAP, predicate.Inline, w)
	case AlgoInline:
		r, err := RunPredicate(matcher.PrefixCoverAP, predicate.Inline, w)
		r.Algorithm = AlgoInline
		return r, err
	case AlgoPostponed:
		r, err := RunPredicate(matcher.PrefixCoverAP, predicate.Postponed, w)
		r.Algorithm = AlgoPostponed
		return r, err
	case AlgoYFilter:
		return RunYFilter(w)
	case AlgoIndexFilter:
		return RunIndexFilter(w)
	case AlgoXFilterFSM:
		return RunXFilterFSM(w)
	case AlgoXTrie:
		return RunXTrie(w)
	}
	return Result{}, fmt.Errorf("bench: unknown algorithm %q", a)
}
