package bench

import "predfilter"

// StageSummary is the per-stage latency digest appended to the JSON
// benchmark reports by xfbench -metrics: observation count and
// interpolated quantile estimates from the engine's always-on stage
// histograms (see internal/metrics for the bucket layout the estimates
// come from).
type StageSummary struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50us   float64 `json:"p50_us"`
	P95us   float64 `json:"p95_us"`
	P99us   float64 `json:"p99_us"`
}

// stageSummaries digests the engine's stage histograms, keyed by the
// stage names the /metrics endpoint uses. Store stages are omitted:
// benchmark engines are in-memory.
func stageSummaries(eng *predfilter.Engine) map[string]StageSummary {
	st := eng.Stats().Stages
	digest := func(h predfilter.HistogramStats) StageSummary {
		return StageSummary{
			Count:   h.Count,
			TotalMs: float64(h.TotalNanos) / 1e6,
			P50us:   h.P50Nanos / 1e3,
			P95us:   h.P95Nanos / 1e3,
			P99us:   h.P99Nanos / 1e3,
		}
	}
	return map[string]StageSummary{
		"parse":           digest(st.Parse),
		"cache":           digest(st.Cache),
		"predicate_match": digest(st.PredicateMatch),
		"occurrence":      digest(st.Occurrence),
		"match":           digest(st.Match),
	}
}
