package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"predfilter"
	"predfilter/internal/dtd"
)

// ColumnarPoint is one measured configuration of the columnar batch
// matcher against the scalar baseline.
type ColumnarPoint struct {
	// Mode is "scalar" (ColumnarOff baseline) or "columnar".
	Mode  string `json:"mode"`
	Exprs int    `json:"exprs"`
	// Batch is the configured dispatch-group bound (Config.StreamBatch).
	Batch        int     `json:"batch"`
	DocsPerSec   float64 `json:"docs_per_sec"`
	Speedup      float64 `json:"speedup_vs_scalar"`
	AllocsPerDoc float64 `json:"allocs_per_doc"`
	// Columnar-only kernel telemetry over the measured interval: the
	// effective documents per columnar batch, the fraction of
	// candidate-bitset words that held at least one candidate, and the
	// fraction of swept paths that needed scalar occurrence verification.
	AvgBatch      float64 `json:"avg_batch,omitempty"`
	Occupancy     float64 `json:"occupancy,omitempty"`
	AmbiguousFrac float64 `json:"ambiguous_frac,omitempty"`
}

// ColumnarReport compares scalar and columnar matching over NITF
// workloads with the path cache disabled — every document presents novel
// structure, so the numbers isolate raw matching cost, the regime the
// bitset kernel targets. Docs/sec includes parsing; AllocsPerDoc is the
// runtime.MemStats.Mallocs delta per document.
type ColumnarReport struct {
	Scale      string          `json:"scale"`
	DTD        string          `json:"dtd"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Docs       int             `json:"docs"`
	Rounds     int             `json:"rounds"`
	Points     []ColumnarPoint `json:"points"`
}

// DefaultColumnarBatches is the dispatch-group sweep of -exp columnar.
func DefaultColumnarBatches() []int { return []int{1, 8, 32, 64} }

// columnarExprCounts returns the expression counts of -exp columnar:
// paper-friendly absolute counts (the kernel's payoff grows with the
// expression count), shrunk only under the smoke scale.
func columnarExprCounts(s Scale) []int {
	return []int{s.smallExprs(5000), s.smallExprs(40000)}
}

// RunColumnar measures scalar MatchBatch against the columnar batch
// matcher at each dispatch-group bound, per expression count. One worker
// throughout: the comparison is word-parallelism against the scalar
// expression loop, not thread-parallelism.
func RunColumnar(s Scale, batches []int, progress io.Writer) (*ColumnarReport, error) {
	d := dtd.NITF()
	rep := &ColumnarReport{
		Scale:      s.Name,
		DTD:        d.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Docs:       s.Docs,
	}
	for _, nexpr := range columnarExprCounts(s) {
		cfg := DefaultWorkloadConfig(nexpr)
		cfg.Docs = s.Docs
		w, err := NewWorkload(d, cfg)
		if err != nil {
			return nil, err
		}
		rounds := 1
		for rounds*len(w.Docs) < 200 {
			rounds++
		}
		rep.Rounds = rounds
		total := rounds * len(w.Docs)

		measure := func(eng *predfilter.Engine) (docsPerSec, allocsPerDoc float64, err error) {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for r := 0; r < rounds; r++ {
				for _, res := range eng.MatchBatch(w.Docs, 1) {
					if res.Err != nil {
						return 0, 0, res.Err
					}
				}
			}
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&m1)
			return float64(total) / elapsed.Seconds(),
				float64(m1.Mallocs-m0.Mallocs) / float64(total), nil
		}

		newEngine := func(mode predfilter.ColumnarMode, batch int) (*predfilter.Engine, error) {
			eng := predfilter.New(predfilter.Config{
				PathCacheBytes: -1, // novel structure every document
				Columnar:       mode,
				StreamBatch:    batch,
			})
			if _, err := eng.AddAll(w.XPEs); err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			return eng, nil
		}

		scalarEng, err := newEngine(predfilter.ColumnarOff, 32)
		if err != nil {
			return nil, err
		}
		scalarDPS, scalarAllocs, err := measure(scalarEng)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, ColumnarPoint{
			Mode: "scalar", Exprs: len(w.XPEs), Batch: 32,
			DocsPerSec: scalarDPS, Speedup: 1, AllocsPerDoc: scalarAllocs,
		})
		progressf(progress, "  N=%-7d scalar          %9.0f docs/sec  %6.0f allocs/doc\n",
			len(w.XPEs), scalarDPS, scalarAllocs)

		for _, b := range batches {
			eng, err := newEngine(predfilter.ColumnarOn, b)
			if err != nil {
				return nil, err
			}
			c0 := eng.Stats().Columnar
			dps, allocs, err := measure(eng)
			if err != nil {
				return nil, err
			}
			c1 := eng.Stats().Columnar
			p := ColumnarPoint{
				Mode: "columnar", Exprs: len(w.XPEs), Batch: b,
				DocsPerSec: dps, Speedup: dps / scalarDPS, AllocsPerDoc: allocs,
			}
			if db := c1.Batches - c0.Batches; db > 0 {
				p.AvgBatch = float64(c1.Docs-c0.Docs) / float64(db)
			}
			if dw := c1.WordsSwept - c0.WordsSwept; dw > 0 {
				p.Occupancy = float64(c1.WordsLive-c0.WordsLive) / float64(dw)
			}
			if dp := c1.Paths - c0.Paths; dp > 0 {
				p.AmbiguousFrac = float64(c1.AmbiguousPaths-c0.AmbiguousPaths) / float64(dp)
			}
			rep.Points = append(rep.Points, p)
			progressf(progress, "  N=%-7d columnar b=%-4d %9.0f docs/sec  %6.0f allocs/doc  %5.2fx  occ=%.3f\n",
				len(w.XPEs), b, dps, allocs, p.Speedup, p.Occupancy)
		}
	}
	return rep, nil
}

// runColumnar adapts RunColumnar to the experiment registry; the JSON
// report form is produced by cmd/xfbench.
func runColumnar(s Scale, progress io.Writer) ([]Point, error) {
	rep, err := RunColumnar(s, DefaultColumnarBatches(), progress)
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, p := range rep.Points {
		series := p.Mode
		if p.Mode == "columnar" {
			series = fmt.Sprintf("columnar-b%d", p.Batch)
		}
		points = append(points, Point{
			Series: series, X: float64(p.Exprs), XLabel: "exprs",
			R: Result{
				Algorithm: Algorithm(series),
				Exprs:     p.Exprs,
				Filter:    time.Duration(float64(time.Second) / p.DocsPerSec),
			},
		})
	}
	return points, nil
}
