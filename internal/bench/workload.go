// Package bench assembles workloads and runs the paper's experiments: it
// pairs the DTD-driven document and expression generators, runs each
// filtering engine over a document set, and reports the timing series of
// every table and figure in §6 (see DESIGN.md for the experiment index).
package bench

import (
	"fmt"

	"predfilter/internal/dtd"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xmlgen"
	"predfilter/internal/xpgen"
)

// Workload is one experiment input: a document set plus an expression set.
type Workload struct {
	DTD  *dtd.DTD
	Docs [][]byte // serialized documents (each engine parses its own way)
	XPEs []string
}

// WorkloadConfig describes a workload in the paper's terms.
type WorkloadConfig struct {
	// Docs is the number of generated documents (paper: 500 per DTD).
	Docs int
	// MaxLevels is the document nesting bound (paper: 6–10, set
	// consistently with MaxLength).
	MaxLevels int
	// Exprs is N: the number of expressions.
	Exprs int
	// MaxLength is L (paper default 6).
	MaxLength int
	// Wildcard is W (paper default 0.2).
	Wildcard float64
	// Descendant is DO (paper default 0.2).
	Descendant float64
	// Distinct is D.
	Distinct bool
	// Filters is the number of attribute filters per expression.
	Filters int
	// Seed controls both generators.
	Seed int64
}

// DefaultWorkloadConfig returns the paper's §6.2 defaults at the given
// expression count.
func DefaultWorkloadConfig(exprs int) WorkloadConfig {
	return WorkloadConfig{
		Docs:       500,
		MaxLevels:  6,
		Exprs:      exprs,
		MaxLength:  6,
		Wildcard:   0.2,
		Descendant: 0.2,
		Distinct:   true,
		Seed:       42,
	}
}

// NewWorkload generates a workload.
func NewWorkload(d *dtd.DTD, cfg WorkloadConfig) (*Workload, error) {
	gen := xmlgen.New(d, xmlgen.Config{MaxLevels: cfg.MaxLevels, Seed: cfg.Seed})
	docs := gen.GenerateN(cfg.Docs)
	xpes, err := xpgen.Generate(d, xpgen.Config{
		Count:      cfg.Exprs,
		MaxLength:  cfg.MaxLength,
		Wildcard:   cfg.Wildcard,
		Descendant: cfg.Descendant,
		Distinct:   cfg.Distinct,
		Filters:    cfg.Filters,
		Seed:       cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return &Workload{DTD: d, Docs: docs, XPEs: xpes}, nil
}

// MustWorkload is NewWorkload that panics on error.
func MustWorkload(d *dtd.DTD, cfg WorkloadConfig) *Workload {
	w, err := NewWorkload(d, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// ParseDocs parses every document with the path-decomposing parser (used
// by the predicate engine and by statistics).
func (w *Workload) ParseDocs() ([]*xmldoc.Document, error) {
	out := make([]*xmldoc.Document, len(w.Docs))
	for i, d := range w.Docs {
		doc, err := xmldoc.Parse(d)
		if err != nil {
			return nil, err
		}
		out[i] = doc
	}
	return out, nil
}

// DocStats summarizes a document set.
type DocStats struct {
	Docs     int
	AvgTags  float64
	AvgBytes float64
	AvgPaths float64
}

// Stats computes document-set statistics (the paper reports ≈140 tags and
// ≈8.77 KB per document).
func (w *Workload) Stats() (DocStats, error) {
	var st DocStats
	st.Docs = len(w.Docs)
	for _, raw := range w.Docs {
		st.AvgBytes += float64(len(raw))
		doc, err := xmldoc.Parse(raw)
		if err != nil {
			return st, err
		}
		st.AvgTags += float64(doc.Elements)
		st.AvgPaths += float64(len(doc.Paths))
	}
	n := float64(st.Docs)
	st.AvgTags /= n
	st.AvgBytes /= n
	st.AvgPaths /= n
	return st, nil
}
