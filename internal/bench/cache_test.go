package bench

import (
	"io"
	"testing"
)

// TestRunCache smoke-tests the cache report at the smallest scale: both
// DTDs are present, the cached points actually hit (steady state after the
// warmup round), and the disabled baseline records no cache activity.
func TestRunCache(t *testing.T) {
	s := Scale{Name: "test", Docs: 5, Factor: 0.002}
	rep, err := RunCache(s, []int{64}, io.Discard, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DTDs) != 2 || rep.DTDs[0].DTD != "nitf" || rep.DTDs[1].DTD != "psd" {
		t.Fatalf("DTDs %+v", rep.DTDs)
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Fatalf("report metadata %+v", rep)
	}
	for _, dr := range rep.DTDs {
		if dr.Off.DocsPerSec <= 0 || dr.Off.Config != "off" {
			t.Fatalf("%s off point %+v", dr.DTD, dr.Off)
		}
		if dr.Off.Hits != 0 || dr.Off.Misses != 0 {
			t.Fatalf("%s disabled baseline has cache counters %+v", dr.DTD, dr.Off)
		}
		if len(dr.Sizes) != 1 {
			t.Fatalf("%s sizes %+v", dr.DTD, dr.Sizes)
		}
		p := dr.Sizes[0]
		if p.Config != "64KB" || p.DocsPerSec <= 0 || p.Speedup <= 0 {
			t.Fatalf("%s cached point %+v", dr.DTD, p)
		}
		if p.Hits == 0 {
			t.Fatalf("%s cached point saw no hits: %+v", dr.DTD, p)
		}
		if dr.StreamWorkers < 2 || dr.StreamOn.Hits == 0 {
			t.Fatalf("%s stream pair %+v / %+v", dr.DTD, dr.StreamOff, dr.StreamOn)
		}
		// stageMetrics=true: the stream-on engine parsed and matched every
		// document, and its cache was enabled, so all digests have counts.
		for _, stage := range []string{"parse", "cache", "predicate_match", "match"} {
			if dr.Stages[stage].Count == 0 {
				t.Fatalf("%s stage %q has no observations: %+v", dr.DTD, stage, dr.Stages)
			}
		}
	}
}
