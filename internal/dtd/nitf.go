package dtd

// NITF returns the synthetic News Industry Text Format schema: a large
// (~110 element types), deep and irregular vocabulary with attribute-rich
// elements. Documents instantiate only a small random subset of the many
// optional branches, so randomly generated expressions are highly
// selective — the paper reports ~6% matched expressions on this workload.
func NITF() *DTD {
	b := newBuilder("nitf", "nitf")

	b.el("nitf", "head", "body").
		attr("version", true, "3.0", "3.1", "3.2").
		attr("change.date", false, nums(1, 28)...)
	b.el("head", "title", "meta*", "tobject?", "docdata", "pubdata*", "revision-history*").
		attr("id", false, nums(1, 9)...)
	b.el("title")
	b.el("meta").
		attr("name", true, "origin", "urgency", "slug", "channel").
		attr("content", true, nums(1, 12)...)
	b.el("tobject", "tobject.property*", "tobject.subject*").
		attr("tobject.type", true, "news", "feature", "analysis", "background")
	b.el("tobject.property").
		attr("tobject.property.type", true, "current", "interview", "obituary", "poll", "profile", "summary")
	b.el("tobject.subject").
		attr("tobject.subject.code", true, nums(1, 17)...).
		attr("tobject.subject.type", false, "politics", "sport", "finance", "weather", "science")
	b.el("docdata", "correction?", "evloc?", "doc-id", "del-list?", "urgency?", "fixture?",
		"date.issue", "date.release?", "date.expire?", "doc-scope*", "series?", "ed-msg?",
		"du-key?", "doc.copyright?", "key-list?", "identified-content?")
	b.el("correction").attr("info", true, "regret", "correction-date")
	b.el("evloc").
		attr("iso-cc", true, "us", "ca", "de", "fr", "jp", "uk", "cn").
		attr("city", false, "nyc", "toronto", "berlin", "paris", "tokyo", "london")
	b.el("doc-id").
		attr("id-string", true, nums(1000, 1023)...).
		attr("regsrc", false, "ap", "reuters", "afp", "dpa")
	b.el("del-list", "from-src*")
	b.el("from-src").attr("src-name", true, "wire", "desk", "stringer")
	b.el("urgency").attr("ed-urg", true, nums(1, 8)...)
	b.el("fixture").attr("fix-id", true, nums(1, 6)...)
	b.el("date.issue").attr("norm", true, nums(20240101, 20240112)...)
	b.el("date.release").attr("norm", true, nums(20240101, 20240112)...)
	b.el("date.expire").attr("norm", true, nums(20240101, 20240112)...)
	b.el("doc-scope").attr("scope", true, "national", "regional", "local", "international")
	b.el("series").
		attr("series.name", true, "election", "olympics", "markets").
		attr("series.part", false, nums(1, 9)...)
	b.el("ed-msg").attr("info", true, "embargo", "advisory", "update")
	b.el("du-key", "key-list?").attr("version", false, nums(1, 5)...)
	b.el("doc.copyright").
		attr("year", true, nums(2020, 2026)...).
		attr("holder", false, "ap", "reuters", "afp")
	b.el("key-list", "keyword*")
	b.el("keyword").attr("key", true, "election", "merger", "storm", "cup", "trial", "strike", "launch", "summit")
	b.el("identified-content", "person*", "org*", "location*", "event*", "function*",
		"object.title*", "virtloc*", "classifier*")
	b.el("pubdata").
		attr("type", true, "print", "web", "broadcast").
		attr("item-length", false, nums(100, 111)...).
		attr("unit-of-measure", false, "word", "character", "inch")
	b.el("revision-history").
		attr("name", true, "ed1", "ed2", "desk").
		attr("function", false, "update", "correct", "expand").
		attr("norm", false, nums(20240101, 20240112)...)

	b.el("body", "body.head?", "body.content+", "body.end?")
	b.el("body.head", "hedline?", "note*", "rights?", "byline*", "distributor?", "dateline*", "abstract*", "series?")
	b.el("hedline", "hl1", "hl2*")
	b.el("hl1")
	b.el("hl2")
	b.el("note", "body.content?").
		attr("noteclass", true, "cpyrt", "end", "hd", "editorsnote").
		attr("type", false, "std", "pa", "npa")
	b.el("rights", "rights.owner?", "rights.startdate?", "rights.enddate?", "rights.agent?")
	b.el("rights.owner")
	b.el("rights.startdate").attr("norm", true, nums(20240101, 20240112)...)
	b.el("rights.enddate").attr("norm", true, nums(20240101, 20240112)...)
	b.el("rights.agent")
	b.el("byline", "person?", "byttl?", "location?", "virtloc?")
	b.el("byttl", "org?")
	b.el("distributor", "org?")
	b.el("dateline", "location?", "story.date?")
	b.el("story.date").attr("norm", true, nums(20240101, 20240112)...)
	b.el("abstract", "p*")

	b.el("body.content", "p+", "block*", "table*", "media*", "ol*", "ul*", "dl*", "bq*", "fn*", "hr?")
	b.el("block", "tobject.subject?", "p*", "media?", "table?", "bq?", "fn?").
		attr("id", false, nums(1, 30)...)
	b.el("p", "em*", "q*", "a*", "br*", "person?", "location?", "org?", "chron?", "num?", "money?", "copyrite?").
		attr("lede", false, "true", "false").
		attr("summary", false, "true", "false").
		attr("optional-text", false, "true", "false")
	b.el("em", "q?")
	b.el("q", "em?")
	b.el("a").
		attr("href", false, nums(1, 40)...).
		attr("name", false, nums(1, 40)...)
	b.el("br")
	b.el("chron").attr("norm", true, nums(20240101, 20240112)...)
	b.el("num", "frac?", "sub?", "sup?")
	b.el("frac", "frac-num?", "frac-sep?", "frac-den?")
	b.el("frac-num")
	b.el("frac-sep")
	b.el("frac-den")
	b.el("sub")
	b.el("sup")
	b.el("money").attr("unit", true, "usd", "eur", "gbp", "jpy", "cad")
	b.el("copyrite", "copyrite.year?", "copyrite.holder?")
	b.el("copyrite.year")
	b.el("copyrite.holder")

	b.el("media", "media-reference+", "media-metadata*", "media-caption*", "media-producer?").
		attr("media-type", true, "image", "video", "audio", "data")
	b.el("media-reference").
		attr("source", true, nums(1, 24)...).
		attr("mime-type", true, "image-jpeg", "image-png", "video-mp4", "audio-mp3").
		attr("height", false, nums(240, 251)...).
		attr("width", false, nums(320, 331)...)
	b.el("media-metadata").
		attr("name", true, "camera", "lens", "iso", "shutter").
		attr("value", true, nums(1, 16)...)
	b.el("media-caption", "p*")
	b.el("media-producer", "person?", "org?")

	b.el("table", "nitf-table-metadata?", "tr*").
		attr("width", false, nums(1, 12)...).
		attr("border", false, "0", "1")
	b.el("nitf-table-metadata", "nitf-table-summary?", "nitf-col*").
		attr("class", false, "data", "layout")
	b.el("nitf-table-summary", "p?")
	b.el("nitf-col").
		attr("value", true, nums(1, 12)...).
		attr("occurrences", false, nums(1, 6)...)
	b.el("tr", "th*", "td*")
	b.el("th", "p?")
	b.el("td", "p?", "ul?", "ol?")

	b.el("ol", "li*").attr("seqnum", false, nums(1, 9)...)
	b.el("ul", "li*")
	b.el("li", "p?", "ul?", "ol?")
	b.el("dl", "dt*", "dd*")
	b.el("dt")
	b.el("dd", "p?")
	b.el("bq", "block?", "credit?").attr("quote-source", false, "speech", "statement", "report")
	b.el("credit", "person?", "org?")
	b.el("fn", "p*")
	b.el("hr")

	b.el("body.end", "tagline?", "bibliography?")
	b.el("tagline", "a?")
	b.el("bibliography")

	b.el("person", "name.given?", "name.family?", "function?", "alt-code*").
		attr("idsrc", false, "staff", "wire", "guest")
	b.el("name.given")
	b.el("name.family")
	b.el("function").attr("role", false, "reporter", "editor", "analyst", "minister", "ceo", "coach")
	b.el("org", "org.id?", "alt-code*").
		attr("idsrc", false, "ticker", "registry").
		attr("value", false, nums(1, 40)...)
	b.el("org.id").attr("id-value", true, nums(1, 40)...)
	b.el("alt-code").
		attr("idsrc", true, "iptc", "local").
		attr("value", true, nums(1, 40)...)
	b.el("location", "sublocation?", "city?", "state?", "region?", "country?")
	b.el("sublocation")
	b.el("city").attr("city-code", false, nums(1, 24)...)
	b.el("state").attr("state-code", false, "ny", "ca", "tx", "on", "bc")
	b.el("region").attr("region-code", false, "na", "eu", "apac", "latam")
	b.el("country").attr("iso-cc", false, "us", "ca", "de", "fr", "jp", "uk", "cn")
	b.el("event", "classifier*").
		attr("start-date", false, nums(20240101, 20240112)...).
		attr("end-date", false, nums(20240101, 20240112)...)
	b.el("object.title")
	b.el("virtloc").attr("idsrc", false, "uri", "doi")
	b.el("classifier").
		attr("type", false, "category", "genre", "priority").
		attr("value", false, nums(1, 20)...)

	// The real NITF DTD makes virtually every child optional (head?,
	// title?, docdata?, body.content*, ...); only the body is required.
	// Mirror that: demote One→Optional and Plus→Star everywhere except
	// nitf→body. This is what makes randomly generated expressions so
	// selective on NITF documents.
	for _, el := range b.d.Elements {
		for i := range el.Children {
			if el.Name == "nitf" && el.Children[i].Name == "body" {
				continue
			}
			switch el.Children[i].Repeat {
			case One:
				el.Children[i].Repeat = Optional
			case Plus:
				el.Children[i].Repeat = Star
			}
		}
	}

	if err := b.d.Validate(); err != nil {
		panic(err)
	}
	return b.d
}
