// Package dtd provides a lightweight DTD-style content model — element
// declarations with child particles, repetition and attribute lists — used
// by the document generator (internal/xmlgen) and the XPath workload
// generator (internal/xpgen).
//
// Two built-in schemas, NITF and PSD, stand in for the News Industry Text
// Format and Protein Sequence Database DTDs the paper generated its
// workloads from (see DESIGN.md §2 for the substitution rationale): NITF
// is large, irregular and attribute-rich, which makes randomly generated
// expressions highly selective; PSD is small and regular, which makes most
// schema-valid expressions match most documents.
package dtd

import "fmt"

// Repeat describes the repetition of a child particle, mirroring DTD
// occurrence indicators.
type Repeat int

const (
	// One is exactly one occurrence (no indicator).
	One Repeat = iota
	// Optional is "?": zero or one.
	Optional
	// Star is "*": zero or more.
	Star
	// Plus is "+": one or more.
	Plus
)

// Child is one child particle of an element declaration.
type Child struct {
	Name   string
	Repeat Repeat
}

// Attr is one attribute declaration. Values enumerates the values the
// generator chooses from (an abstraction of CDATA/enumerated types);
// Required attributes are always emitted, optional ones probabilistically.
type Attr struct {
	Name     string
	Required bool
	Values   []string
}

// Element is one element declaration.
type Element struct {
	Name     string
	Children []Child
	Attrs    []Attr
}

// DTD is a complete document type: a named root plus element declarations.
type DTD struct {
	Name     string
	Root     string
	Elements map[string]*Element
}

// Element returns the declaration of name, or nil.
func (d *DTD) Element(name string) *Element { return d.Elements[name] }

// Validate checks internal consistency: the root exists and every child
// particle refers to a declared element.
func (d *DTD) Validate() error {
	if d.Elements[d.Root] == nil {
		return fmt.Errorf("dtd %s: root element %q not declared", d.Name, d.Root)
	}
	for name, el := range d.Elements {
		if el.Name != name {
			return fmt.Errorf("dtd %s: element %q declared under key %q", d.Name, el.Name, name)
		}
		for _, c := range el.Children {
			if d.Elements[c.Name] == nil {
				return fmt.Errorf("dtd %s: element %q references undeclared child %q", d.Name, name, c.Name)
			}
		}
		for _, a := range el.Attrs {
			if len(a.Values) == 0 {
				return fmt.Errorf("dtd %s: element %q attribute %q has no values", d.Name, name, a.Name)
			}
		}
	}
	return nil
}

// ElementNames returns all declared element names (unsorted).
func (d *DTD) ElementNames() []string {
	out := make([]string, 0, len(d.Elements))
	for name := range d.Elements {
		out = append(out, name)
	}
	return out
}

// builder accumulates declarations with a compact notation.
type builder struct {
	d *DTD
}

func newBuilder(name, root string) *builder {
	return &builder{d: &DTD{Name: name, Root: root, Elements: make(map[string]*Element)}}
}

// el declares an element; children use suffix notation: "p*", "title?",
// "author+", "uid".
func (b *builder) el(name string, children ...string) *Element {
	e := &Element{Name: name}
	for _, c := range children {
		rep := One
		switch c[len(c)-1] {
		case '?':
			rep, c = Optional, c[:len(c)-1]
		case '*':
			rep, c = Star, c[:len(c)-1]
		case '+':
			rep, c = Plus, c[:len(c)-1]
		}
		e.Children = append(e.Children, Child{Name: c, Repeat: rep})
	}
	b.d.Elements[name] = e
	return e
}

// attr attaches an attribute declaration to an element.
func (e *Element) attr(name string, required bool, values ...string) *Element {
	e.Attrs = append(e.Attrs, Attr{Name: name, Required: required, Values: values})
	return e
}

func nums(from, to int) []string {
	out := make([]string, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, fmt.Sprint(i))
	}
	return out
}
