package dtd

// PSD returns the synthetic Protein Sequence Database schema: a small
// (~40 element types), highly regular record structure with few
// attributes. Almost every document instantiates almost every declared
// path, so most schema-valid expressions match most documents — the paper
// reports ~75% matched expressions on this workload.
func PSD() *DTD {
	b := newBuilder("psd", "ProteinDatabase")

	b.el("ProteinDatabase", "ProteinEntry+")
	b.el("ProteinEntry", "header", "protein", "organism", "reference+", "genetics?",
		"classification", "keywords", "feature+", "summary", "sequence").
		attr("id", true, nums(1, 40)...)
	b.el("header", "uid", "accession+", "created_date", "seq-rev_date", "txt-rev_date")
	b.el("uid")
	b.el("accession").attr("ref", false, nums(1, 12)...)
	b.el("created_date")
	b.el("seq-rev_date")
	b.el("txt-rev_date")
	b.el("protein", "name", "source", "function?")
	b.el("name")
	b.el("source")
	b.el("function")
	b.el("organism", "formal", "common", "variety?")
	b.el("formal")
	b.el("common")
	b.el("variety")
	b.el("reference", "refinfo", "accinfo*")
	b.el("refinfo", "authors", "citation", "title", "year", "pages", "xrefs").
		attr("refid", false, nums(1, 20)...)
	b.el("authors", "author+")
	b.el("author")
	b.el("citation", "volume", "note?").attr("type", false, "journal", "book", "submission")
	b.el("volume")
	b.el("note")
	b.el("title")
	b.el("year")
	b.el("pages")
	b.el("xrefs", "xref+")
	b.el("xref", "db", "id")
	b.el("db")
	b.el("id")
	b.el("accinfo", "mol-type", "seq-spec?").
		attr("acc", false, nums(1, 12)...)
	b.el("mol-type")
	b.el("seq-spec")
	b.el("genetics", "gene", "gene-map?", "codon-start?", "introns?", "note?")
	b.el("gene")
	b.el("gene-map")
	b.el("codon-start").attr("pos", false, nums(1, 3)...)
	b.el("introns")
	b.el("classification", "superfamily")
	b.el("superfamily")
	b.el("keywords", "keyword+")
	b.el("keyword")
	b.el("feature", "feature-type", "description", "seq-spec?").
		attr("label", false, nums(1, 16)...)
	b.el("feature-type")
	b.el("description")
	b.el("summary", "length", "type")
	b.el("length")
	b.el("type")
	b.el("sequence")

	if err := b.d.Validate(); err != nil {
		panic(err)
	}
	return b.d
}
