package dtd

import "testing"

func TestBuiltinsValidate(t *testing.T) {
	for _, d := range []*DTD{NITF(), PSD()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestNITFCharacter checks the workload-relevant properties of the NITF
// substitution: a large vocabulary and near-total optionality (the real
// NITF DTD makes virtually everything optional).
func TestNITFCharacter(t *testing.T) {
	d := NITF()
	if n := len(d.Elements); n < 100 {
		t.Errorf("NITF has %d element types, want >= 100", n)
	}
	required := 0
	total := 0
	attrs := 0
	for _, el := range d.Elements {
		for _, c := range el.Children {
			total++
			if c.Repeat == One || c.Repeat == Plus {
				required++
			}
		}
		attrs += len(el.Attrs)
	}
	if required > 2 {
		t.Errorf("NITF has %d required child particles, want <= 2 (only nitf→body)", required)
	}
	if attrs < 60 {
		t.Errorf("NITF declares %d attributes, want attribute-rich (>= 60)", attrs)
	}
	if total < 120 {
		t.Errorf("NITF has %d child particles, want a broad content model", total)
	}
}

// TestPSDCharacter checks the PSD substitution: small, regular, mostly
// required structure with few attributes.
func TestPSDCharacter(t *testing.T) {
	d := PSD()
	if n := len(d.Elements); n < 30 || n > 60 {
		t.Errorf("PSD has %d element types, want a small vocabulary (30-60)", n)
	}
	required, optional := 0, 0
	attrs := 0
	for _, el := range d.Elements {
		for _, c := range el.Children {
			if c.Repeat == One || c.Repeat == Plus {
				required++
			} else {
				optional++
			}
		}
		attrs += len(el.Attrs)
	}
	if required <= optional {
		t.Errorf("PSD has %d required vs %d optional particles; regularity requires required > optional", required, optional)
	}
	if nitfAttrs := countAttrs(NITF()); attrs >= nitfAttrs {
		t.Errorf("PSD declares %d attributes, NITF %d; the paper's NITF documents are the attribute-rich ones", attrs, nitfAttrs)
	}
}

func countAttrs(d *DTD) int {
	n := 0
	for _, el := range d.Elements {
		n += len(el.Attrs)
	}
	return n
}

func TestValidateErrors(t *testing.T) {
	b := newBuilder("t", "root")
	b.el("root", "missing")
	if err := b.d.Validate(); err == nil {
		t.Error("Validate accepted an undeclared child")
	}

	b2 := newBuilder("t", "nope")
	b2.el("root")
	if err := b2.d.Validate(); err == nil {
		t.Error("Validate accepted a missing root")
	}

	b3 := newBuilder("t", "root")
	b3.el("root").attr("a", true)
	if err := b3.d.Validate(); err == nil {
		t.Error("Validate accepted an attribute without values")
	}
}

func TestBuilderNotation(t *testing.T) {
	b := newBuilder("t", "r")
	b.el("x")
	b.el("y")
	b.el("z")
	b.el("w")
	e := b.el("r", "x", "y?", "z*", "w+")
	want := []Child{{"x", One}, {"y", Optional}, {"z", Star}, {"w", Plus}}
	for i, c := range e.Children {
		if c != want[i] {
			t.Errorf("child %d = %+v, want %+v", i, c, want[i])
		}
	}
	if err := b.d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(b.d.ElementNames()); got != 5 {
		t.Errorf("ElementNames = %d, want 5", got)
	}
}
