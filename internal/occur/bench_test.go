package occur

import (
	"math/rand"
	"testing"
)

func benchChains(n, levels, pairs int) [][][]Pair {
	rng := rand.New(rand.NewSource(9))
	out := make([][][]Pair, n)
	for i := range out {
		chain := make([][]Pair, levels)
		for j := range chain {
			for k := 0; k < pairs; k++ {
				chain[j] = append(chain[j], Pair{A: int32(1 + rng.Intn(4)), B: int32(1 + rng.Intn(4))})
			}
		}
		out[i] = chain
	}
	return out
}

// BenchmarkDetermine measures the backtracking search at the chain shapes
// the engine sees (short chains, a handful of pairs per level).
func BenchmarkDetermine(b *testing.B) {
	chains := benchChains(64, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Determine(chains[i%len(chains)])
	}
}

// BenchmarkDetermineAlg1 measures the literal transcription of the
// paper's Algorithm 1 on the same inputs.
func BenchmarkDetermineAlg1(b *testing.B) {
	chains := benchChains(64, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetermineAlg1(chains[i%len(chains)])
	}
}

// BenchmarkEnumerate measures full combination enumeration.
func BenchmarkEnumerate(b *testing.B) {
	chains := benchChains(64, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(chains[i%len(chains)], func([]Pair) bool { return true })
	}
}
