package occur

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pairs(ps ...[2]int32) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{A: p[0], B: p[1]}
	}
	return out
}

func TestDetermineExamples(t *testing.T) {
	cases := []struct {
		name      string
		results   [][]Pair
		want      bool
		wantDepth int
	}{
		{
			// Example 2 / Table 1 of the paper: a//b/c over (a,b,c,a,b,c).
			// R1 = {(1,1),(1,2),(2,2)}, R2 = {(1,1),(2,2)} — matched via
			// (1,1),(1,1).
			name: "paper-a//b/c",
			results: [][]Pair{
				pairs([2]int32{1, 1}, [2]int32{1, 2}, [2]int32{2, 2}),
				pairs([2]int32{1, 1}, [2]int32{2, 2}),
			},
			want: true, wantDepth: 2,
		},
		{
			// Example 2: c//b//a — R1 = {(1,2)}, R2 = {(1,2)}: the chain
			// (1,2),(1,2) is discontinuous (2 != 1), so no match.
			name: "paper-c//b//a",
			results: [][]Pair{
				pairs([2]int32{1, 2}),
				pairs([2]int32{1, 2}),
			},
			want: false, wantDepth: 1,
		},
		{
			name:    "single",
			results: [][]Pair{pairs([2]int32{3, 3})},
			want:    true, wantDepth: 1,
		},
		{
			name:    "empty-first",
			results: [][]Pair{nil, pairs([2]int32{1, 1})},
			want:    false, wantDepth: 0,
		},
		{
			name:    "empty-second",
			results: [][]Pair{pairs([2]int32{1, 1}), nil},
			want:    false, wantDepth: 1,
		},
		{
			name:    "nil-chain",
			results: nil,
			want:    true, wantDepth: 0,
		},
		{
			// Requires backtracking: first choice at level 0 dead-ends.
			name: "backtrack",
			results: [][]Pair{
				pairs([2]int32{1, 1}, [2]int32{1, 2}),
				pairs([2]int32{2, 3}),
				pairs([2]int32{3, 1}),
			},
			want: true, wantDepth: 3,
		},
		{
			// Deep backtracking across several levels.
			name: "deep-backtrack",
			results: [][]Pair{
				pairs([2]int32{1, 1}, [2]int32{1, 2}, [2]int32{1, 3}),
				pairs([2]int32{1, 5}, [2]int32{2, 5}, [2]int32{3, 4}),
				pairs([2]int32{4, 9}),
			},
			want: true, wantDepth: 3,
		},
		{
			name: "exhausts-without-match",
			results: [][]Pair{
				pairs([2]int32{1, 1}, [2]int32{2, 2}),
				pairs([2]int32{1, 3}, [2]int32{2, 4}),
				pairs([2]int32{5, 5}),
			},
			want: false, wantDepth: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, depth := Determine(tc.results)
			if got != tc.want || depth != tc.wantDepth {
				t.Errorf("Determine = (%v, %d), want (%v, %d)", got, depth, tc.want, tc.wantDepth)
			}
		})
	}
}

// bruteForce enumerates every combination; the ground truth for small
// inputs.
func bruteForce(results [][]Pair) bool {
	var rec func(level int, need int32) bool
	rec = func(level int, need int32) bool {
		if level == len(results) {
			return true
		}
		for _, pr := range results[level] {
			if level > 0 && pr.A != need {
				continue
			}
			if rec(level+1, pr.B) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

func randomResults(rng *rand.Rand) [][]Pair {
	n := 1 + rng.Intn(5)
	results := make([][]Pair, n)
	for i := range results {
		k := rng.Intn(5) // may be empty
		for j := 0; j < k; j++ {
			results[i] = append(results[i], Pair{A: int32(1 + rng.Intn(3)), B: int32(1 + rng.Intn(3))})
		}
	}
	return results
}

// TestDetermineAgainstBruteForce cross-checks the production search
// against exhaustive enumeration on random instances.
func TestDetermineAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		results := randomResults(rng)
		want := bruteForce(results)
		got, _ := Determine(results)
		if got != want {
			t.Fatalf("case %d: Determine = %v, brute force = %v, input %v", i, got, want, results)
		}
	}
}

// TestDetermineAgainstAlg1 cross-checks the production search against the
// literal transcription of the paper's Algorithm 1.
func TestDetermineAgainstAlg1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		results := randomResults(rng)
		want := DetermineAlg1(results)
		got, _ := Determine(results)
		if got != want {
			t.Fatalf("case %d: Determine = %v, Alg1 = %v, input %v", i, got, want, results)
		}
	}
}

// TestDetermineDepthSound checks with testing/quick that the reported
// depth is achievable: there is a consistent chain of exactly that length,
// and (when the search failed) no longer one.
func TestDetermineDepthSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	deepest := func(results [][]Pair) int {
		best := 0
		var rec func(level int, need int32)
		rec = func(level int, need int32) {
			if level > best {
				best = level
			}
			if level == len(results) {
				return
			}
			for _, pr := range results[level] {
				if level > 0 && pr.A != need {
					continue
				}
				rec(level+1, pr.B)
			}
		}
		rec(0, 0)
		return best
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		results := randomResults(r)
		ok, depth := Determine(results)
		want := deepest(results)
		if ok {
			// Early exit: depth is at least the full length.
			return depth == len(results)
		}
		return depth == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEnumerate verifies all full combinations are produced exactly once
// and that early stop works.
func TestEnumerate(t *testing.T) {
	results := [][]Pair{
		pairs([2]int32{1, 1}, [2]int32{1, 2}),
		pairs([2]int32{1, 1}, [2]int32{2, 2}, [2]int32{2, 1}),
	}
	var got [][]Pair
	done := Enumerate(results, func(assign []Pair) bool {
		got = append(got, append([]Pair(nil), assign...))
		return true
	})
	if !done {
		t.Error("Enumerate reported early stop without one")
	}
	want := [][]Pair{
		{{A: 1, B: 1}, {A: 1, B: 1}},
		{{A: 1, B: 2}, {A: 2, B: 2}},
		{{A: 1, B: 2}, {A: 2, B: 1}},
	}
	if len(got) != len(want) {
		t.Fatalf("Enumerate produced %d combinations, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Errorf("combination %d = %v, want %v", i, got[i], want[i])
		}
	}

	count := 0
	done = Enumerate(results, func([]Pair) bool {
		count++
		return false
	})
	if done || count != 1 {
		t.Errorf("early stop: done=%v count=%d, want false/1", done, count)
	}
}

// TestEnumerateCountMatchesDetermine: Determine finds a match iff
// Enumerate produces at least one combination.
func TestEnumerateCountMatchesDetermine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		results := randomResults(rng)
		n := 0
		Enumerate(results, func([]Pair) bool { n++; return true })
		ok, _ := Determine(results)
		if ok != (n > 0) {
			t.Fatalf("case %d: Determine=%v but Enumerate found %d, input %v", i, ok, n, results)
		}
	}
}
