package occur

import (
	"context"
	"errors"
	"testing"

	"predfilter/internal/guard"
)

// worstCase builds the occurrence-pair sets of the pipeline's worst case:
// a chain of n identical tags matched by a k-step descendant expression.
// The descendant self-pair over the chain yields every (i, j) with
// 1 ≤ i < j ≤ n at each of the k levels; a full chained combination would
// be a strictly increasing sequence of k occurrence numbers drawn from
// 1..n, so with k > n none exists and the backtracking search must visit
// every increasing sequence — Θ(2^n) pairs — before answering noMatch.
func worstCase(n, k int) [][]Pair {
	level := make([]Pair, 0, n*(n-1)/2)
	for i := int32(1); i <= int32(n); i++ {
		for j := i + 1; j <= int32(n); j++ {
			level = append(level, Pair{A: i, B: j})
		}
	}
	results := make([][]Pair, k)
	for lv := range results {
		results[lv] = level
	}
	return results
}

func TestWorstCaseStepsGrowExponentially(t *testing.T) {
	// The whole point of the step budget: without one, each +2 of chain
	// length at least doubles the search. Assert the growth so a future
	// "optimization" that silently changes the worst case breaks loudly.
	var prev int64
	for n := 8; n <= 16; n += 2 {
		matched, _, steps, exhausted := DetermineLimited(worstCase(n, n+1), 1<<40)
		if matched || exhausted {
			t.Fatalf("n=%d: matched=%v exhausted=%v, want an exhaustive noMatch", n, matched, exhausted)
		}
		if prev > 0 && steps < 2*prev {
			t.Fatalf("n=%d: steps %d < 2x previous %d — worst case no longer exponential?", n, steps, prev)
		}
		prev = steps
	}
	if prev < 1<<16 {
		t.Fatalf("n=16 worst case visited only %d pairs; generator is not adversarial", prev)
	}
}

func TestWorstCaseExactBudgetCutoff(t *testing.T) {
	results := worstCase(14, 15)
	_, _, full, exhausted := DetermineLimited(results, 1<<40)
	if exhausted {
		t.Fatal("reference run should complete")
	}
	for _, budget := range []int64{1, 7, full / 2, full - 1} {
		matched, _, steps, exhausted := DetermineLimited(results, budget)
		if !exhausted {
			t.Fatalf("budget %d of %d: not exhausted", budget, full)
		}
		if steps != budget {
			t.Fatalf("budget %d: visited %d pairs, want the cutoff to be exact", budget, steps)
		}
		if matched {
			t.Fatalf("budget %d: matched=true from a truncated search", budget)
		}
	}
	// At exactly the full cost the search completes: exhaustion means the
	// budget ran out before the answer, not that it was merely consumed.
	if _, _, steps, exhausted := DetermineLimited(results, full); exhausted || steps != full {
		t.Fatalf("budget==full: steps=%d exhausted=%v, want %d,false", steps, exhausted, full)
	}
}

func TestWorstCaseDetermineBudgetTrips(t *testing.T) {
	b := guard.NewBudget(context.Background(), guard.Limits{MaxSteps: 1000})
	DetermineBudget(worstCase(16, 17), b)
	if !b.Exceeded() {
		t.Fatal("budget survived the worst case")
	}
	var le *guard.LimitError
	if err := b.Err(); !errors.As(err, &le) || le.Kind != guard.Steps {
		t.Fatalf("Err = %v, want Steps *LimitError", b.Err())
	}
	if le.Limit != 1000 {
		t.Fatalf("LimitError.Limit = %d, want 1000", le.Limit)
	}
}

func TestEnumerateBudgetChargesDeadEnds(t *testing.T) {
	// A search that dead-ends without ever producing a full combination
	// must still consume steps; charging only completed combinations would
	// leave the exponential dead-end walk unbounded.
	results := worstCase(12, 13)
	b := guard.NewBudget(context.Background(), guard.Limits{MaxSteps: 500})
	visits := 0
	EnumerateBudget(results, b, func([]Pair) bool { visits++; return true })
	if visits != 0 {
		t.Fatalf("worst case produced %d full combinations, want 0", visits)
	}
	if !b.Exceeded() {
		t.Fatal("budget survived an exponential dead-end enumeration")
	}
}

func TestEnumerateBudgetNilMatchesEnumerate(t *testing.T) {
	results := [][]Pair{
		pairs([2]int32{1, 1}, [2]int32{1, 2}, [2]int32{2, 2}),
		pairs([2]int32{1, 1}, [2]int32{2, 2}),
	}
	var a, b [][]Pair
	Enumerate(results, func(assign []Pair) bool {
		a = append(a, append([]Pair(nil), assign...))
		return true
	})
	EnumerateBudget(results, nil, func(assign []Pair) bool {
		b = append(b, append([]Pair(nil), assign...))
		return true
	})
	if len(a) != len(b) {
		t.Fatalf("Enumerate found %d combinations, EnumerateBudget(nil) %d", len(a), len(b))
	}
	for i := range a {
		for lv := range a[i] {
			if a[i][lv] != b[i][lv] {
				t.Fatalf("combination %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
