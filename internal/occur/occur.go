// Package occur implements the occurrence determination algorithm
// (paper §4.2.1, Algorithm 1): given the ordered predicate matching
// results R_1, ..., R_n of an expression — each R_i a set of occurrence
// number pairs — decide whether a chained combination exists, i.e. pairs
// (o1_i, o2_i) with o2_{i-1} = o1_i for every i.
//
// Determine is the production implementation (depth-first backtracking
// with prefix-depth reporting, used by prefix covering); DetermineAlg1 is
// a literal transcription of the paper's Algorithm 1, kept as an
// executable specification and cross-checked against Determine in tests.
//
// The search's worst case is exponential in the occurrence pairs, so the
// budgeted variants (DetermineBudget, DetermineLimited) bound the effort:
// they visit at most a configured number of pairs and report exhaustion
// instead of an answer, which the matcher surfaces as a typed
// *guard.LimitError rather than a silent "no match".
package occur

import "predfilter/internal/guard"

// Pair is one occurrence-number pair from a predicate matching result.
// Single-tag predicates duplicate their occurrence number (A == B);
// relative predicates carry the occurrence numbers of both tags.
type Pair struct {
	A, B int32
}

// Determine reports whether the chains admit a full match, and the length
// of the longest consistent prefix found while searching (a consistent
// partial assignment of length k is exactly a match of the length-k prefix
// expression, which is what prefix covering consumes).
//
// An empty result set at position i caps the reachable depth at i; a nil
// or empty results slice matches vacuously with depth 0.
func Determine(results [][]Pair) (matched bool, maxDepth int) {
	n := len(results)
	if n == 0 {
		return true, 0
	}
	maxDepth = 0
	var dfs func(level int, need int32) bool
	dfs = func(level int, need int32) bool {
		if level == n {
			return true
		}
		for _, pr := range results[level] {
			if level > 0 && pr.A != need {
				continue
			}
			if level+1 > maxDepth {
				maxDepth = level + 1
			}
			if dfs(level+1, pr.B) {
				return true
			}
		}
		return false
	}
	return dfs(0, 0), maxDepth
}

// DetermineSteps is Determine with search-effort accounting: steps counts
// every occurrence pair the backtracking search visited. It exists for
// the match-trace mode, where the per-expression search effort is part of
// the explanation; the plain Determine stays free of the counter on the
// hot path.
func DetermineSteps(results [][]Pair) (matched bool, maxDepth, steps int) {
	n := len(results)
	if n == 0 {
		return true, 0, 0
	}
	var dfs func(level int, need int32) bool
	dfs = func(level int, need int32) bool {
		if level == n {
			return true
		}
		for _, pr := range results[level] {
			steps++
			if level > 0 && pr.A != need {
				continue
			}
			if level+1 > maxDepth {
				maxDepth = level + 1
			}
			if dfs(level+1, pr.B) {
				return true
			}
		}
		return false
	}
	return dfs(0, 0), maxDepth, steps
}

// stepper consumes one unit of search effort per occurrence pair visited
// and reports whether the search may continue. guard.Budget implements it;
// stepLimit is the self-contained counter used by DetermineLimited.
type stepper interface {
	Step() bool
}

// stepLimit is a plain countdown stepper.
type stepLimit struct {
	left int64
}

func (s *stepLimit) Step() bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	return true
}

// determineBounded is the budgeted search core: Determine with one Step
// consulted per pair visited. aborted reports that the budget ran out
// before the search completed, in which case matched and maxDepth are the
// partial state and must not be reported as an answer.
func determineBounded(results [][]Pair, s stepper) (matched bool, maxDepth int, aborted bool) {
	n := len(results)
	if n == 0 {
		return true, 0, false
	}
	var dfs func(level int, need int32) bool
	dfs = func(level int, need int32) bool {
		if level == n {
			return true
		}
		for _, pr := range results[level] {
			if !s.Step() {
				aborted = true
				return false
			}
			if level > 0 && pr.A != need {
				continue
			}
			if level+1 > maxDepth {
				maxDepth = level + 1
			}
			if dfs(level+1, pr.B) {
				return true
			}
			if aborted {
				return false
			}
		}
		return false
	}
	matched = dfs(0, 0)
	if aborted {
		matched = false
	}
	return matched, maxDepth, aborted
}

// DetermineBudget is Determine charging one budget step per occurrence
// pair visited. When the budget trips mid-search it returns immediately
// with the budget's sticky error set (guard.Budget.Err); the partial
// matched/maxDepth pair is then meaningless and callers must surface the
// error instead of the result. A nil budget falls back to the unbudgeted
// Determine.
func DetermineBudget(results [][]Pair, b *guard.Budget) (matched bool, maxDepth int) {
	if b == nil {
		return Determine(results)
	}
	matched, maxDepth, _ = determineBounded(results, b)
	return matched, maxDepth
}

// DetermineStepsBudget is DetermineSteps charging one budget step per
// occurrence pair visited. steps reports the pairs charged to the budget
// by this call. When the budget trips mid-search the budget's sticky
// error is set (guard.Budget.Err) and the partial matched/maxDepth pair
// is meaningless; the caller must surface the error instead of the
// result. A nil budget falls back to the unbudgeted DetermineSteps.
func DetermineStepsBudget(results [][]Pair, b *guard.Budget) (matched bool, maxDepth, steps int) {
	if b == nil {
		return DetermineSteps(results)
	}
	before := b.Steps()
	matched, maxDepth, _ = determineBounded(results, b)
	return matched, maxDepth, int(b.Steps() - before)
}

// DetermineLimited is DetermineSteps with a hard step budget: the search
// visits at most budget occurrence pairs. steps reports the pairs actually
// visited (== budget when exhausted is true — the cutoff is exact), and
// exhausted reports that the budget ran out before the search completed,
// in which case matched is false without being an answer.
func DetermineLimited(results [][]Pair, budget int64) (matched bool, maxDepth int, steps int64, exhausted bool) {
	s := stepLimit{left: budget}
	matched, maxDepth, exhausted = determineBounded(results, &s)
	return matched, maxDepth, budget - s.left, exhausted
}

// Enumerate calls visit for every full chained combination, in
// depth-first order. The assign slice is reused between calls; visit must
// copy it if it retains it. Enumeration stops early when visit returns
// false. It reports whether enumeration ran to completion (true) or was
// stopped by visit (false).
func Enumerate(results [][]Pair, visit func(assign []Pair) bool) bool {
	n := len(results)
	assign := make([]Pair, n)
	var dfs func(level int, need int32) bool
	dfs = func(level int, need int32) bool {
		if level == n {
			return visit(assign)
		}
		for _, pr := range results[level] {
			if level > 0 && pr.A != need {
				continue
			}
			assign[level] = pr
			if !dfs(level+1, pr.B) {
				return false
			}
		}
		return true
	}
	return dfs(0, 0)
}

// EnumerateBudget is Enumerate charging one budget step per occurrence
// pair visited (not just per full combination reported), so an
// enumeration that dead-ends exponentially without completing any
// combination is still bounded. When the budget trips, enumeration stops
// with the budget's sticky error set and the caller must surface it
// instead of the partial candidate set. A nil budget falls back to
// Enumerate.
func EnumerateBudget(results [][]Pair, b *guard.Budget, visit func(assign []Pair) bool) bool {
	if b == nil {
		return Enumerate(results, visit)
	}
	n := len(results)
	assign := make([]Pair, n)
	var dfs func(level int, need int32) bool
	dfs = func(level int, need int32) bool {
		if level == n {
			return visit(assign)
		}
		for _, pr := range results[level] {
			if !b.Step() {
				return false
			}
			if level > 0 && pr.A != need {
				continue
			}
			assign[level] = pr
			if !dfs(level+1, pr.B) {
				return false
			}
		}
		return true
	}
	return dfs(0, 0)
}

// DetermineAlg1 is a literal transcription of the paper's Algorithm 1,
// including its explicit back/step bookkeeping. It returns match/noMatch
// only. Production code uses Determine; this function exists as an
// executable specification and is cross-validated in tests.
func DetermineAlg1(results [][]Pair) bool {
	n := len(results)
	if n == 0 {
		return true
	}
	// Line 2-6: immediately noMatch if any R_i is empty.
	for _, r := range results {
		if len(r) == 0 {
			return false
		}
	}
	// R'_i are the remaining candidate sets; p_i the currently selected
	// pair per level.
	remaining := make([][]Pair, n)
	selected := make([]Pair, n)
	// Line 7: R'_1 ← R_1, select one pair and delete it.
	remaining[0] = append([]Pair(nil), results[0]...)
	selected[0] = remaining[0][0]
	remaining[0] = remaining[0][1:]
	current := 0 // 0-based; the paper's "current = 1"
	back := false
	for {
		if !back {
			if current == n-1 {
				return true // line 11
			}
			// Line 13: advance and build R'_{current} = R_current(o2).
			o2 := selected[current].B
			current++
			remaining[current] = remaining[current][:0]
			for _, pr := range results[current] {
				if pr.A == o2 {
					remaining[current] = append(remaining[current], pr)
				}
			}
		}
		if len(remaining[current]) > 0 {
			// Line 17: select and remove one pair.
			selected[current] = remaining[current][0]
			remaining[current] = remaining[current][1:]
			back = false
		} else {
			// Lines 19-27: backtrack to the deepest level with remaining
			// candidates.
			step := current - 1
			for step >= 0 && len(remaining[step]) == 0 {
				step--
			}
			if step < 0 {
				return false // line 24 (step = 0 in 1-based numbering)
			}
			current = step
			back = true
		}
	}
}
