package predfilter

import (
	"fmt"
	"sync"
	"time"

	"predfilter/internal/store"
	"predfilter/internal/xpath"
)

// PersistentConfig configures a persistent engine. The zero value is
// ready to use: fsynced writes, size-triggered snapshots every 8192
// operations, no periodic snapshots.
type PersistentConfig struct {
	// Engine configures the wrapped filtering engine.
	Engine Config
	// SnapshotEvery compacts the write-ahead log into a snapshot once it
	// accumulates this many operations. 0 means the default (8192);
	// negative disables size-triggered snapshots.
	SnapshotEvery int
	// SnapshotInterval additionally snapshots on a timer when the log is
	// non-empty. 0 disables periodic snapshots.
	SnapshotInterval time.Duration
	// NoSync disables fsync on log appends and snapshot writes: the state
	// then survives process crashes but not OS crashes or power loss.
	NoSync bool
}

// StoreStats are the persistence counters of a persistent engine.
type StoreStats = store.Stats

// Subscription is one live persisted subscription.
type Subscription struct {
	ID SID
	// Expression is the canonical form of the registered expression (the
	// form persisted and replayed; Parse(canonical) ≡ the original).
	Expression string
}

// PersistentEngine is an Engine whose subscription set survives restarts.
// Every Add and Remove is appended to a checksummed write-ahead log before
// it is acknowledged, and a snapshot file compacts the log (on policy
// triggers, on Snapshot, and on Close). Open recovers the live set and
// re-registers it under the original identifiers, so SIDs held by clients
// remain valid across restarts.
//
// Matching methods are inherited from Engine and stay safe for concurrent
// use. Registration must go through the PersistentEngine's Add/AddAll/
// Remove — mutating the embedded Engine directly would bypass the log and
// diverge from the durable state.
type PersistentEngine struct {
	*Engine
	cfg PersistentConfig
	st  *store.Store

	// mu serializes mutations so the matcher and the store apply them in
	// the same order; matching does not take it.
	mu     sync.Mutex
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if necessary) the persistent engine state in dir
// and recovers it: the latest snapshot is loaded, the log is replayed over
// it — truncating a torn tail at the first corrupt record — and every
// surviving subscription is re-registered under its original SID.
func Open(dir string, cfg PersistentConfig) (*PersistentEngine, error) {
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 8192
	}
	eng := New(cfg.Engine)
	st, err := store.Open(dir, store.Options{NoSync: cfg.NoSync, Metrics: eng.mx})
	if err != nil {
		return nil, err
	}
	for _, e := range st.Entries() {
		if err := eng.m.AddWithSID(e.Expr, SID(e.SID)); err != nil {
			st.Close()
			return nil, fmt.Errorf("predfilter: replay sid %d (%q): %w", e.SID, e.Expr, err)
		}
	}
	pe := &PersistentEngine{Engine: eng, cfg: cfg, st: st, done: make(chan struct{})}
	if cfg.SnapshotInterval > 0 {
		pe.wg.Add(1)
		go pe.snapshotLoop()
	}
	return pe, nil
}

// Add registers an expression, durably logs it, and returns its SID. The
// SID is acknowledged only after the operation is on disk.
func (pe *PersistentEngine) Add(xpe string) (SID, error) {
	p, err := xpath.Parse(xpe)
	if err != nil {
		return 0, err
	}
	canon := p.String()

	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.closed {
		return 0, fmt.Errorf("predfilter: engine is closed")
	}
	sid := SID(pe.st.NextSID())
	// Apply to the matcher first: it is the component that can still
	// reject the expression (unsupported fragment), and its effects are
	// in-memory, hence cheap to roll back if the log append fails.
	if err := pe.Engine.m.AddPathWithSID(p, sid); err != nil {
		return 0, err
	}
	if err := pe.st.AppendAdd(uint32(sid), canon); err != nil {
		_ = pe.Engine.m.Remove(sid)
		return 0, err
	}
	pe.maybeSnapshotLocked()
	return sid, nil
}

// AddWithSID registers an expression under a caller-assigned SID and
// durably logs it. It exists for cluster deployments: a shard's store
// holds a sparse subset of coordinator-assigned global identifiers, and a
// WAL-shipped standby replays its primary's identifiers verbatim. The SID
// must not be live; locally assigned identifiers (Add) never collide with
// it afterwards.
func (pe *PersistentEngine) AddWithSID(xpe string, sid SID) error {
	p, err := xpath.Parse(xpe)
	if err != nil {
		return err
	}
	canon := p.String()

	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.closed {
		return fmt.Errorf("predfilter: engine is closed")
	}
	if err := pe.Engine.m.AddPathWithSID(p, sid); err != nil {
		return err
	}
	if err := pe.st.AppendAddAt(uint32(sid), canon); err != nil {
		_ = pe.Engine.m.Remove(sid)
		return err
	}
	pe.maybeSnapshotLocked()
	return nil
}

// AddAll registers a batch of expressions, returning their identifiers in
// order. On error, the expressions before the failing one remain
// registered (and logged).
func (pe *PersistentEngine) AddAll(xpes []string) ([]SID, error) {
	sids := make([]SID, 0, len(xpes))
	for _, s := range xpes {
		sid, err := pe.Add(s)
		if err != nil {
			return sids, err
		}
		sids = append(sids, sid)
	}
	return sids, nil
}

// Remove unregisters a SID and durably logs the removal.
func (pe *PersistentEngine) Remove(sid SID) error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.closed {
		return fmt.Errorf("predfilter: engine is closed")
	}
	expr, ok := pe.st.Expr(uint32(sid))
	if !ok {
		return fmt.Errorf("predfilter: unknown sid %d", sid)
	}
	if err := pe.Engine.m.Remove(sid); err != nil {
		return err
	}
	if err := pe.st.AppendRemove(uint32(sid)); err != nil {
		_ = pe.Engine.m.AddWithSID(expr, sid)
		return err
	}
	pe.maybeSnapshotLocked()
	return nil
}

// Subscriptions returns the live persisted subscriptions, ascending by
// SID (chronological registration order of the survivors).
func (pe *PersistentEngine) Subscriptions() []Subscription {
	entries := pe.st.Entries()
	out := make([]Subscription, len(entries))
	for i, e := range entries {
		out[i] = Subscription{ID: SID(e.SID), Expression: e.Expr}
	}
	return out
}

// Snapshot compacts the log into a fresh snapshot now, regardless of
// policy triggers.
func (pe *PersistentEngine) Snapshot() error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.closed {
		return fmt.Errorf("predfilter: engine is closed")
	}
	return pe.st.Snapshot()
}

// StoreStats returns the persistence counters (log size, snapshot and
// recovery activity).
func (pe *PersistentEngine) StoreStats() StoreStats { return pe.st.Stats() }

// ErrStaleCursor reports a WAL-shipping cursor invalidated by a snapshot
// compaction (or otherwise off a record boundary); the reader must resync
// from ShipSnapshot.
var ErrStaleCursor = store.ErrStaleCursor

// WALOp is one shipped write-ahead-log operation: the addition of ID
// under Expression, or (Remove set) the removal of ID.
type WALOp struct {
	Remove     bool
	ID         SID
	Expression string
}

// ShipSnapshot returns the full live subscription set plus the WAL cursor
// (epoch, offset) that immediately follows it, atomically: a follower
// that applies the entries and then tails ShipRead from the cursor sees
// every subsequent operation exactly once. This is the catch-up half of
// the WAL-shipping protocol behind hot standbys.
func (pe *PersistentEngine) ShipSnapshot() (subs []Subscription, nextSID uint32, epoch, offset int64) {
	entries, next, ep, off := pe.st.ShipSnapshot()
	subs = make([]Subscription, len(entries))
	for i, e := range entries {
		subs[i] = Subscription{ID: SID(e.SID), Expression: e.Expr}
	}
	return subs, next, ep, off
}

// ShipRead returns the WAL operations at (epoch, offset) and the cursor
// for the next poll — only the tail since the last poll is read, not the
// whole log. ErrStaleCursor means the log was compacted under the cursor;
// resync from ShipSnapshot.
func (pe *PersistentEngine) ShipRead(epoch, offset int64) ([]WALOp, int64, error) {
	recs, next, err := pe.st.ReadFrom(epoch, offset)
	if err != nil {
		return nil, 0, err
	}
	ops := make([]WALOp, len(recs))
	for i, r := range recs {
		ops[i] = WALOp{Remove: r.Remove, ID: SID(r.SID), Expression: r.Expr}
	}
	return ops, next, nil
}

// WALEpoch returns the current WAL-shipping epoch (increments on every
// snapshot compaction).
func (pe *PersistentEngine) WALEpoch() int64 { return pe.st.WALEpoch() }

// maybeSnapshotLocked applies the size-triggered snapshot policy. Failure
// is deliberately swallowed: the operation that triggered it is already
// durable in the log, and a failed compaction only defers to the next
// trigger (or to Close, which does surface the error).
func (pe *PersistentEngine) maybeSnapshotLocked() {
	if pe.cfg.SnapshotEvery > 0 && pe.st.WALRecords() >= int64(pe.cfg.SnapshotEvery) {
		_ = pe.st.Snapshot()
	}
}

// snapshotLoop is the periodic snapshot policy: compact whenever the log
// is non-empty at the tick.
func (pe *PersistentEngine) snapshotLoop() {
	defer pe.wg.Done()
	t := time.NewTicker(pe.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			pe.mu.Lock()
			if !pe.closed && pe.st.WALRecords() > 0 {
				_ = pe.st.Snapshot()
			}
			pe.mu.Unlock()
		case <-pe.done:
			return
		}
	}
}

// Close takes a final snapshot (when the log holds operations not yet
// compacted) and closes the store. A PersistentEngine that was Closed
// rejects further mutations; matching remains available on the in-memory
// engine.
func (pe *PersistentEngine) Close() error {
	pe.mu.Lock()
	if pe.closed {
		pe.mu.Unlock()
		return nil
	}
	pe.closed = true
	pe.mu.Unlock()

	close(pe.done)
	pe.wg.Wait()

	pe.mu.Lock()
	defer pe.mu.Unlock()
	var err error
	if pe.st.WALRecords() > 0 {
		err = pe.st.Snapshot()
	}
	if cerr := pe.st.Close(); err == nil {
		err = cerr
	}
	return err
}
