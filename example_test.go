package predfilter_test

import (
	"fmt"

	"predfilter"
)

// The basic workflow: create an engine, register expressions, filter
// documents.
func Example() {
	eng := predfilter.New(predfilter.Config{})

	news, _ := eng.Add("/feed/story[@urgent=true]")
	sports, _ := eng.Add("//story[category/sports]")

	doc := []byte(`
		<feed>
		  <story urgent="true">
		    <category><sports/></category>
		  </story>
		</feed>`)

	matches, _ := eng.Match(doc)
	for _, sid := range matches {
		switch sid {
		case news:
			fmt.Println("urgent news matched")
		case sports:
			fmt.Println("sports matched")
		}
	}
	// Output:
	// urgent news matched
	// sports matched
}

// Duplicate and overlapping expressions share storage: a million
// subscribers with similar interests cost little more than their distinct
// interests.
func ExampleEngine_Stats() {
	eng := predfilter.New(predfilter.Config{})
	for i := 0; i < 1000; i++ {
		eng.Add("/catalog/book/title") // 1000 identical subscriptions
	}
	eng.Add("/catalog/book")   // shares the (catalog, book) predicates
	eng.Add("/catalog//price") // shares the catalog predicate structure

	st := eng.Stats()
	fmt.Println("expressions:", st.Expressions)
	fmt.Println("distinct:", st.DistinctExpressions)
	// Output:
	// expressions: 1002
	// distinct: 3
}

// Pre-parsing lets one document be matched against several engines (or
// repeatedly) without re-decomposing it.
func ExampleParseDocument() {
	doc, _ := predfilter.ParseDocument([]byte(`<a><b/><c><d/></c></a>`))
	fmt.Println("elements:", doc.Elements())
	fmt.Println("paths:", doc.Paths())

	eng := predfilter.New(predfilter.Config{})
	sid, _ := eng.Add("/a/c/d")
	matches := eng.MatchParsed(doc)
	fmt.Println("matched:", len(matches) == 1 && matches[0] == sid)
	// Output:
	// elements: 4
	// paths: 2
	// matched: true
}
