// Package predfilter is a high-throughput XML/XPath filtering engine: it
// determines, for each incoming XML document, which of a large set of
// registered XPath expressions the document matches. It implements the
// predicate-based filtering algorithm of Hou and Jacobsen ("Predicate-based
// Filtering of XPath Expressions", ICDE 2006 / Technical Report CSRG-514):
// expressions are encoded as ordered sets of position predicates that are
// stored and evaluated once no matter how many expressions share them, and
// documents are decomposed into root-to-leaf paths encoded as tuple sets
// evaluated against the shared predicates.
//
// Supported XPath fragment: the child (/) and descendant (//) axes, name
// tests and wildcards (*), attribute filters ([@a], [@a op v] with op in
// = != < <= > >=), and nested path filters ([p], evaluated against the
// document tree). Expressions may be absolute or relative; per the paper's
// filtering semantics a relative expression matches anywhere in the
// document.
//
// # Quick start
//
//	eng := predfilter.New(predfilter.Config{})
//	sid, _ := eng.Add("/nitf/body//p[@lede=true]")
//	matches, _ := eng.Match(xmlBytes)
//
// Engines are safe for concurrent Match calls. Registration is
// constant-time per expression; duplicate expressions share all storage
// and evaluation work and are reported under their own identifiers.
package predfilter

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"predfilter/internal/guard"
	"predfilter/internal/matcher"
	"predfilter/internal/metrics"
	"predfilter/internal/predicate"
	"predfilter/internal/xmldoc"
	"predfilter/internal/xpath"
)

// SID identifies one registered expression (a subscription, in selective
// information dissemination terms).
type SID = matcher.SID

// Limits bounds per-document resource use (see Config.Limits). The zero
// value enforces nothing; each field is independent and zero disables
// that bound.
type Limits = guard.Limits

// LimitError is the typed error returned when a document exceeds a
// configured resource limit: which limit tripped (Kind), the configured
// bound (Limit), and how far the document got (Got). Inspect it with
// errors.As; deadline and cancellation stops additionally satisfy
// errors.Is(err, context.DeadlineExceeded) / context.Canceled. Partial
// results are never reported alongside a LimitError — a governed match
// either completes or fails loudly.
type LimitError = guard.LimitError

// LimitKind identifies which limit a LimitError reports.
type LimitKind = guard.Kind

// The limit kinds a LimitError can carry.
const (
	LimitDepth    LimitKind = guard.Depth
	LimitPaths    LimitKind = guard.Paths
	LimitTuples   LimitKind = guard.Tuples
	LimitDocBytes LimitKind = guard.DocBytes
	LimitSteps    LimitKind = guard.Steps
	LimitDeadline LimitKind = guard.Deadline
	LimitCanceled LimitKind = guard.Canceled
)

// Organization selects how expressions are organized for matching
// (§4.2.2 of the paper). The zero value is PrefixCoverAP, the best
// performing variant in the paper's evaluation and in this package's
// benchmarks.
type Organization int

const (
	// PrefixCoverAP clusters expressions by their first predicate (the
	// access predicate) and shares matches between prefix-related
	// expressions; the paper's basic-pc-ap.
	PrefixCoverAP Organization = iota
	// PrefixCover shares matches between prefix-related expressions; the
	// paper's basic-pc.
	PrefixCover
	// Basic evaluates every expression independently; the paper's
	// unoptimized baseline, kept for benchmarking and ablation.
	Basic
)

// ColumnarMode selects when the columnar batch matcher runs (the
// bitset-parallel expression-matching kernel in internal/matcher, which
// evaluates a whole group of parsed documents against bit columns of
// expressions so matching cost scales with words(|expressions|/64)
// instead of |expressions|). It only applies to the batch entry points
// (MatchStream, MatchBatch); single-document Match calls always use the
// scalar matcher. The PREDFILTER_COLUMNAR environment variable
// ("on"/"1"/"force" or "off"/"0") overrides the configured mode
// process-wide. Columnar and scalar matching produce identical results;
// the mode only moves the throughput/latency trade-off.
type ColumnarMode int

const (
	// ColumnarAuto engages the columnar kernel when a dispatch group is
	// full enough to amortize its per-batch setup (currently 4 parsed
	// documents).
	ColumnarAuto ColumnarMode = iota
	// ColumnarOn forces the columnar kernel for every dispatch group,
	// however small.
	ColumnarOn
	// ColumnarOff forces the scalar matcher everywhere.
	ColumnarOff
)

// colAutoMinBatch is the dispatch-group size at which ColumnarAuto
// engages the columnar kernel.
const colAutoMinBatch = 4

// defaultStreamBatch is the dispatch-group bound used when
// Config.StreamBatch is unset.
const defaultStreamBatch = 32

// AttributeMode selects when attribute filters are evaluated (§5).
type AttributeMode int

const (
	// InlineAttributes attaches filters to the structural predicates, so
	// they are checked during predicate matching. Best when many
	// expressions match structurally.
	InlineAttributes AttributeMode = iota
	// PostponedAttributes verifies filters only after an expression
	// matched structurally ("selection postponed"). Best when few
	// expressions match structurally.
	PostponedAttributes
)

// Config configures an Engine. The zero value is ready to use.
type Config struct {
	Organization  Organization
	AttributeMode AttributeMode
	// DisablePathDedup turns off per-document deduplication of
	// structurally identical root-to-leaf paths. Dedup is a pure
	// optimization (identical paths have identical matching results);
	// this switch exists for benchmarking its effect.
	DisablePathDedup bool
	// ContainmentCovering additionally exploits suffix- and
	// infix-containment between expressions (the paper publishes prefix
	// covering and names the rest as future work): a full match of an
	// expression marks every registered expression whose predicate chain
	// it contains.
	ContainmentCovering bool
	// RarestAccessPredicate clusters each expression on its globally
	// least common predicate instead of its first one, improving the
	// chance whole clusters are skipped (another extension the paper
	// suggests).
	RarestAccessPredicate bool
	// PathCacheBytes bounds the structural path-signature cache, which
	// memoizes per-path structural matching results across documents
	// (documents generated from one DTD repeat the same root-to-leaf tag
	// sequences). 0 selects the default bound (16 MiB); a negative value
	// disables the cache. Value-dependent work (attribute filters, nested
	// path filters) is always re-verified against the live document, so
	// the cache never changes match results.
	PathCacheBytes int64
	// SlowDocThreshold, when positive, emits one structured log record
	// (via Logger) for every document whose parse+match time reaches the
	// threshold, annotated with the per-stage breakdown. Slow documents
	// are also counted in the slow_docs metric.
	SlowDocThreshold time.Duration
	// Logger receives slow-document records; nil selects slog.Default().
	Logger *slog.Logger
	// Limits bounds per-document resource use: structural limits (depth,
	// paths, tuples, bytes) enforced while parsing, and a match budget
	// (occurrence-determination steps, wall-clock deadline) enforced while
	// matching. Exceeding a limit returns a typed *LimitError; the zero
	// value enforces nothing.
	Limits Limits
	// StdXMLParser forces document parsing through encoding/xml instead of
	// the default zero-copy scanner (internal/xmlscan). The scanner is
	// behavior-identical — input outside its subset falls back to
	// encoding/xml automatically — so this switch exists as an escape
	// hatch and for benchmarking. The PREDFILTER_XML_PARSER=std
	// environment variable forces the same process-wide.
	StdXMLParser bool
	// Columnar selects when the batch entry points use the columnar
	// bitset matcher (see ColumnarMode). The PREDFILTER_COLUMNAR
	// environment variable overrides it.
	Columnar ColumnarMode
	// StreamBatch bounds how many pending documents the stream dispatcher
	// groups into one worker job (and thus one columnar batch). The
	// dispatcher never waits to fill a group — it takes whatever is
	// immediately available, so an idle stream keeps single-document
	// latency. 0 selects the default (32); 1 disables grouping.
	StreamBatch int
}

// Engine is the filtering engine. Every engine carries an always-on
// metric set (see Stats and WriteMetrics); recording follows the
// zero-allocation contract of internal/metrics, so there is no
// instrumentation toggle.
type Engine struct {
	m        *matcher.Matcher
	mx       *metrics.Set
	logger   *slog.Logger
	slow     time.Duration
	limits   Limits
	pmode    xmldoc.Mode
	columnar ColumnarMode
	batchMax int // stream dispatch-group bound, ≥ 1
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	var v matcher.Variant
	switch cfg.Organization {
	case PrefixCover:
		v = matcher.PrefixCover
	case Basic:
		v = matcher.Basic
	default:
		v = matcher.PrefixCoverAP
	}
	mode := predicate.Inline
	if cfg.AttributeMode == PostponedAttributes {
		mode = predicate.Postponed
	}
	var cover matcher.CoverMode
	if cfg.ContainmentCovering {
		cover = matcher.Containment
	}
	var cluster matcher.ClusterBy
	if cfg.RarestAccessPredicate {
		cluster = matcher.RarestPredicate
	}
	mx := metrics.NewSet()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	pmode := xmldoc.ModeAuto
	if cfg.StdXMLParser {
		pmode = xmldoc.ModeStd
	}
	columnar := cfg.Columnar
	switch strings.ToLower(os.Getenv("PREDFILTER_COLUMNAR")) {
	case "on", "1", "force":
		columnar = ColumnarOn
	case "off", "0":
		columnar = ColumnarOff
	}
	batchMax := cfg.StreamBatch
	if batchMax <= 0 {
		batchMax = defaultStreamBatch
	}
	return &Engine{
		m: matcher.New(matcher.Options{
			Variant:          v,
			AttrMode:         mode,
			DisablePathDedup: cfg.DisablePathDedup,
			CoverMode:        cover,
			ClusterBy:        cluster,
			PathCacheBytes:   cfg.PathCacheBytes,
			Metrics:          mx,
		}),
		mx:       mx,
		logger:   logger,
		slow:     cfg.SlowDocThreshold,
		limits:   cfg.Limits,
		pmode:    pmode,
		columnar: columnar,
		batchMax: batchMax,
	}
}

// colEngage reports whether a dispatch group of n successfully parsed
// documents should go through the columnar batch matcher.
func (e *Engine) colEngage(n int) bool {
	switch e.columnar {
	case ColumnarOn:
		return n >= 1
	case ColumnarOff:
		return false
	default:
		return n >= colAutoMinBatch
	}
}

// Limits returns the engine's configured resource limits.
func (e *Engine) Limits() Limits { return e.limits }

// Validate reports whether the expression is within the supported
// fragment, without registering it.
func Validate(xpe string) error {
	p, err := xpath.Parse(xpe)
	if err != nil {
		return err
	}
	probe := matcher.New(matcher.Options{})
	_, err = probe.AddPath(p)
	return err
}

// Explain returns the predicate encoding of a single-path expression in
// the paper's notation, e.g.
//
//	Explain("a//b/c")  →  "(d(p_a, p_b), >=, 1) ↦ (d(p_b, p_c), =, 1)"
//
// Nested-path expressions are explained per decomposed sub-expression.
func Explain(xpe string) (string, error) {
	p, err := xpath.Parse(xpe)
	if err != nil {
		return "", err
	}
	if p.IsSinglePath() {
		enc, err := predicate.Encode(p, predicate.Inline)
		if err != nil {
			return "", err
		}
		return enc.String(), nil
	}
	return matcher.ExplainNested(p)
}

// Add registers an XPath expression and returns its identifier. Duplicate
// expressions get distinct identifiers but share storage and evaluation.
func (e *Engine) Add(xpe string) (SID, error) { return e.m.Add(xpe) }

// AddWithSID registers an expression under a caller-chosen identifier.
// It exists for callers that assign identifiers externally — durable
// stores replaying persisted subscriptions, and cluster shards holding a
// coordinator-assigned (sparse) subset of a global identifier space. The
// SID must not be live; plain Add continues past the highest SID ever
// bound, so external and locally assigned identifiers never collide.
func (e *Engine) AddWithSID(xpe string, sid SID) error { return e.m.AddWithSID(xpe, sid) }

// AddAll registers a batch of expressions, returning their identifiers in
// order. On error, the expressions before the failing one remain
// registered.
func (e *Engine) AddAll(xpes []string) ([]SID, error) {
	sids := make([]SID, 0, len(xpes))
	for _, s := range xpes {
		sid, err := e.m.Add(s)
		if err != nil {
			return sids, err
		}
		sids = append(sids, sid)
	}
	return sids, nil
}

// Remove unregisters an expression identifier. Shared storage serving
// other identifiers is unaffected.
func (e *Engine) Remove(sid SID) error { return e.m.Remove(sid) }

// Match parses the document and returns the identifiers of all matching
// expressions (an expression matches the document iff its evaluation over
// the document is a non-empty node set). Configured limits are enforced;
// Match is MatchContext without caller-side cancellation.
func (e *Engine) Match(doc []byte) ([]SID, error) {
	return e.MatchContext(context.Background(), doc)
}

// MatchContext is Match under the caller's context and the engine's
// configured limits: the document is parsed under the structural limits
// and matched under the step budget, the configured deadline, and the
// context's own deadline/cancellation. A governance stop returns a typed
// *LimitError (never a partial result); ctx-originated stops additionally
// unwrap to the matching context error.
func (e *Engine) MatchContext(ctx context.Context, doc []byte) ([]SID, error) {
	t0 := time.Now()
	d, err := xmldoc.ParseMeteredLimitsMode(doc, e.mx, e.limits, e.pmode)
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	parse := time.Since(t0)
	t1 := time.Now()
	sids, bd, err := e.m.MatchDocumentBudget(d, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	e.maybeLogSlow(ctx, parse, time.Since(t1), &bd, len(doc), len(d.Paths), len(sids))
	return sids, nil
}

// recordGovernance counts a limit trip when err is a *LimitError and
// returns err unchanged.
func (e *Engine) recordGovernance(err error) error {
	var le *LimitError
	if errors.As(err, &le) {
		e.mx.ObserveLimitTrip(int(le.Kind))
	}
	return err
}

// MatchCounts parses the document and returns, for every matching
// expression, the number of distinct match combinations (the all-matches
// problem Index-Filter originally targets; the filtering semantics of
// Match needs only existence and is cheaper). Configured limits are
// enforced; MatchCounts is MatchCountsContext without caller-side
// cancellation.
func (e *Engine) MatchCounts(doc []byte) (map[SID]int, error) {
	return e.MatchCountsContext(context.Background(), doc)
}

// MatchCountsContext is MatchCounts under the caller's context and the
// engine's configured limits. Exhaustive combination enumeration keeps
// searching where filtering stops at the first match, so it is the
// pipeline path that needs governance most: the document is parsed under
// the structural limits and every occurrence pair the enumeration visits
// is charged to the step budget. A governance stop returns a typed
// *LimitError (never partial counts).
func (e *Engine) MatchCountsContext(ctx context.Context, doc []byte) (map[SID]int, error) {
	d, err := xmldoc.ParseMeteredLimitsMode(doc, e.mx, e.limits, e.pmode)
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	counts, err := e.m.MatchDocumentAllBudget(d, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	return counts, nil
}

// MatchReader is Match over a stream. The size limit is enforced as the
// stream is consumed, so an oversized document is rejected without being
// read to the end.
func (e *Engine) MatchReader(r io.Reader) ([]SID, error) {
	return e.MatchReaderContext(context.Background(), r)
}

// MatchReaderContext is MatchContext over a stream.
func (e *Engine) MatchReaderContext(ctx context.Context, r io.Reader) ([]SID, error) {
	t0 := time.Now()
	d, err := xmldoc.ParseReaderMeteredLimitsMode(r, e.mx, e.limits, e.pmode)
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	parse := time.Since(t0)
	t1 := time.Now()
	sids, bd, err := e.m.MatchDocumentBudget(d, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	e.maybeLogSlow(ctx, parse, time.Since(t1), &bd, 0, len(d.Paths), len(sids))
	return sids, nil
}

// Document is a pre-parsed document, reusable across engines.
type Document struct {
	doc *xmldoc.Document
}

// ParseDocument decomposes a document once so it can be matched against
// several engines without re-parsing.
func ParseDocument(data []byte) (*Document, error) {
	d, err := xmldoc.Parse(data)
	if err != nil {
		return nil, err
	}
	return &Document{doc: d}, nil
}

// Elements returns the document's element count.
func (d *Document) Elements() int { return d.doc.Elements }

// Paths returns the document's root-to-leaf path count.
func (d *Document) Paths() int { return len(d.doc.Paths) }

// MatchParsed matches a pre-parsed document, without limits (the caller
// already accepted the document's size by parsing it; use
// MatchParsedContext to budget the match stage).
func (e *Engine) MatchParsed(d *Document) []SID {
	t0 := time.Now()
	sids, bd := e.m.MatchDocumentBreakdown(d.doc)
	e.maybeLogSlow(context.Background(), 0, time.Since(t0), &bd, 0, len(d.doc.Paths), len(sids))
	return sids
}

// MatchParsedContext matches a pre-parsed document under the engine's
// match budget and the caller's context (the parse-stage limits do not
// apply — the document is already materialized).
func (e *Engine) MatchParsedContext(ctx context.Context, d *Document) ([]SID, error) {
	t0 := time.Now()
	sids, bd, err := e.m.MatchDocumentBudget(d.doc, guard.NewBudget(ctx, e.limits))
	if err != nil {
		return nil, e.recordGovernance(err)
	}
	e.maybeLogSlow(ctx, 0, time.Since(t0), &bd, 0, len(d.doc.Paths), len(sids))
	return sids, nil
}

// Stats summarizes engine state.
type Stats struct {
	// Expressions is the number of live registered identifiers.
	Expressions int
	// DistinctExpressions is the number of unique expressions after
	// dedup (textually different expressions with identical encodings
	// also collapse).
	DistinctExpressions int
	// DistinctPredicates is the size of the shared predicate index; its
	// sublinear growth in Expressions is the paper's central overlap
	// observation.
	DistinctPredicates int
	// NestedExpressions counts distinct expressions with nested path
	// filters.
	NestedExpressions int
	// PathCache reports the structural path-signature cache activity;
	// zero-valued with Enabled false when the cache is disabled.
	PathCache PathCacheStats
	// Documents, DocErrors, DocBytes, Paths, Matches and SlowDocs are the
	// engine-lifetime pipeline counters (the counter half of the metric
	// set; WriteMetrics serves the same data in exposition form).
	Documents int64
	DocErrors int64
	DocBytes  int64
	Paths     int64
	Matches   int64
	SlowDocs  int64
	// ParseScanDocs counts documents parsed end-to-end by the zero-copy
	// scanner fast path; ParseFallbacks counts documents the fast path
	// handed to the encoding/xml fallback (malformed or out-of-subset
	// input). With StdXMLParser set both stay zero.
	ParseScanDocs  int64
	ParseFallbacks int64
	// LimitTrips counts documents stopped by each governance limit, keyed
	// by the limit's stable snake_case name (depth, paths, tuples,
	// doc_bytes, steps, deadline, canceled). Only kinds that tripped at
	// least once appear.
	LimitTrips map[string]int64
	// Panics counts panics recovered by the isolation layer (stream
	// workers, HTTP handlers) instead of crashing the process.
	Panics int64
	// Columnar reports the columnar batch matcher's activity; zero-valued
	// until a batch entry point engages it.
	Columnar ColumnarStats
	// Stages summarizes the per-stage latency histograms.
	Stages StageStats
}

// PathCacheStats summarizes the structural path-signature cache.
type PathCacheStats struct {
	Enabled       bool
	Hits          int64
	Misses        int64
	Evictions     int64 // capacity evictions plus stale-entry drops
	Invalidations int64 // generation bumps from Add/Remove
	Entries       int   // resident distinct path signatures
	Bytes         int64 // resident byte estimate
	MaxBytes      int64 // configured bound
}

// ColumnarStats summarizes the columnar batch matcher (the bitset
// kernel): how many batches and documents it evaluated, the paths swept,
// the candidate bits that survived the per-path fold, the paths that
// needed scalar occurrence verification because a tag repeated, and the
// occupancy pair — candidate-bitset words scanned vs words that held at
// least one candidate (low occupancy means the word-parallel fold is
// doing its job: most expressions are dismissed 64 at a time).
type ColumnarStats struct {
	Batches        int64
	Docs           int64
	Paths          int64
	Candidates     int64
	AmbiguousPaths int64
	WordsSwept     int64
	WordsLive      int64
}

// Occupancy returns WordsLive / WordsSwept, or 0 before any sweep.
func (s ColumnarStats) Occupancy() float64 {
	if s.WordsSwept == 0 {
		return 0
	}
	return float64(s.WordsLive) / float64(s.WordsSwept)
}

// AvgBatch returns the average documents per columnar batch, or 0.
func (s ColumnarStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Docs) / float64(s.Batches)
}

// HitRate returns hits / (hits + misses), or 0 before any lookup. The sum
// is computed in floating point so counters near the int64 limit cannot
// overflow into a negative total.
func (s PathCacheStats) HitRate() float64 {
	total := float64(s.Hits) + float64(s.Misses)
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / total
}

// Stats returns engine statistics.
func (e *Engine) Stats() Stats {
	st := e.m.Stats()
	out := Stats{
		Expressions:         st.SIDs,
		DistinctExpressions: st.DistinctExpressions,
		DistinctPredicates:  st.DistinctPredicates,
		NestedExpressions:   st.NestedExpressions,
		Documents:           e.mx.DocsTotal.Load(),
		DocErrors:           e.mx.DocErrors.Load(),
		DocBytes:            e.mx.DocBytes.Load(),
		Paths:               e.mx.PathsTotal.Load(),
		Matches:             e.mx.MatchesTotal.Load(),
		SlowDocs:            e.mx.SlowDocs.Load(),
		ParseScanDocs:       e.mx.ParseScanDocs.Load(),
		ParseFallbacks:      e.mx.ParseFallbackDocs.Load(),
		Panics:              e.mx.Panics.Load(),
		Columnar: ColumnarStats{
			Batches:        e.mx.ColBatches.Load(),
			Docs:           e.mx.ColDocs.Load(),
			Paths:          e.mx.ColPaths.Load(),
			Candidates:     e.mx.ColCandidates.Load(),
			AmbiguousPaths: e.mx.ColAmbiguous.Load(),
			WordsSwept:     e.mx.ColWords.Load(),
			WordsLive:      e.mx.ColWordsLive.Load(),
		},
		Stages: e.stageStats(),
	}
	trips := e.mx.LimitTrips()
	for k := guard.Kind(0); k < guard.NumKinds; k++ {
		if n := trips[k]; n > 0 {
			if out.LimitTrips == nil {
				out.LimitTrips = make(map[string]int64)
			}
			out.LimitTrips[k.String()] = n
		}
	}
	if st.PathCacheEnabled {
		out.PathCache = PathCacheStats{
			Enabled:       true,
			Hits:          st.PathCache.Hits,
			Misses:        st.PathCache.Misses,
			Evictions:     st.PathCache.Evictions,
			Invalidations: st.PathCache.Invalidations,
			Entries:       st.PathCache.Entries,
			Bytes:         st.PathCache.Bytes,
			MaxBytes:      st.PathCache.MaxBytes,
		}
	}
	return out
}
