// Command xfbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints its measured series; the shapes
// — who wins, by roughly what factor, where crossovers fall — are the
// reproduction target (absolute times depend on the host).
//
// Usage:
//
//	xfbench -exp fig6a                # one experiment at the default scale
//	xfbench -exp all -scale smoke     # everything, fast sanity pass
//	xfbench -exp fig7 -scale full     # paper scale (millions of XPEs)
//	xfbench -exp pipeline -workers 1,2,4   # streaming throughput → BENCH_pipeline.json
//	xfbench -exp cache -cache-kb 256,4096  # path-signature cache sweep → BENCH_cache.json
//	xfbench -exp pipeline -metrics         # + per-stage p50/p95/p99 in the JSON report
//	xfbench -exp guard                     # bombs vs resource limits → BENCH_guard.json
//	xfbench -exp parse                     # scanner vs encoding/xml parse throughput → BENCH_parse.json
//	xfbench -exp cluster -cluster-shards 1,2,4,8  # scatter/gather vs shard count → BENCH_cluster.json
//	xfbench -exp columnar -col-batches 1,8,32,64  # bitset batch matcher vs scalar → BENCH_columnar.json
//	xfbench -exp chaos                     # cluster fault injection: partition/flap/slow → BENCH_chaos.json
//	xfbench -list                     # list experiment ids
//	xfbench -stats                    # print workload statistics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"predfilter/internal/bench"
	"predfilter/internal/dtd"
	"predfilter/internal/metrics"
)

func main() {
	var (
		expID       = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale       = flag.String("scale", "default", "scale: smoke, default or full")
		workers     = flag.String("workers", "1,2,4", "comma-separated worker counts for -exp pipeline")
		cacheKB     = flag.String("cache-kb", "", "comma-separated cache bounds in KiB for -exp cache (default 256,1024,4096,16384)")
		shardCounts = flag.String("cluster-shards", "1,2,4,8", "comma-separated shard counts for -exp cluster")
		colBatches  = flag.String("col-batches", "", "comma-separated dispatch-group bounds for -exp columnar (default 1,8,32,64)")
		withMet     = flag.Bool("metrics", false, "append per-stage latency digests (count, p50/p95/p99) to the pipeline and cache JSON reports")
		jsonOut     = flag.String("json", "", "write results as JSON to this file (pipeline default: BENCH_pipeline.json)")
		list        = flag.Bool("list", false, "list experiments and exit")
		stats       = flag.Bool("stats", false, "print workload statistics and exit")
		verbose     = flag.Bool("v", true, "print per-point progress")
		validate    = flag.String("validate-metrics", "", "fetch this /metrics URL, validate it against the strict Prometheus 0.0.4 checker, and exit (CI smoke)")
	)
	flag.Parse()

	if *validate != "" {
		if err := validateMetricsURL(*validate); err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s is a valid exposition\n", *validate)
		return
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	s, err := bench.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	if *stats {
		printStats(s)
		return
	}

	progress := os.Stderr
	if !*verbose {
		progress = nil
	}

	// The pipeline experiment has its own report shape (docs/sec and
	// allocs/doc rather than a timing series), so -exp pipeline takes the
	// dedicated path and writes the JSON report.
	if *expID == "pipeline" {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fatal(err)
		}
		out := *jsonOut
		if out == "" {
			out = "BENCH_pipeline.json"
		}
		fmt.Printf("== streaming pipeline throughput [scale %s, workers %v]\n", s.Name, ws)
		rep, err := bench.RunPipeline(s, ws, progress, *withMet)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// Likewise -exp cache: its report (docs/sec cache-off vs cache-on over
	// size bounds, with hit/miss/eviction counters) goes to BENCH_cache.json.
	if *expID == "cache" {
		sizes := bench.DefaultCacheSizesKB()
		if *cacheKB != "" {
			var err error
			if sizes, err = parseWorkers(*cacheKB); err != nil {
				fatal(fmt.Errorf("bad -cache-kb: %w", err))
			}
		}
		out := *jsonOut
		if out == "" {
			out = "BENCH_cache.json"
		}
		fmt.Printf("== path-signature cache throughput [scale %s, sizes %v KiB]\n", s.Name, sizes)
		rep, err := bench.RunCache(s, sizes, progress, *withMet)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// -exp columnar: the columnar batch matcher against the scalar loop
	// over dispatch-group bounds and expression counts, cache off →
	// BENCH_columnar.json.
	if *expID == "columnar" {
		bs := bench.DefaultColumnarBatches()
		if *colBatches != "" {
			var err error
			if bs, err = parseWorkers(*colBatches); err != nil {
				fatal(fmt.Errorf("bad -col-batches: %w", err))
			}
		}
		out := *jsonOut
		if out == "" {
			out = "BENCH_columnar.json"
		}
		fmt.Printf("== columnar batch matcher throughput [scale %s, batches %v]\n", s.Name, bs)
		rep, err := bench.RunColumnar(s, bs, progress)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// -exp parse: parser throughput, the zero-copy scanner against
	// encoding/xml on the same corpora → BENCH_parse.json.
	if *expID == "parse" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_parse.json"
		}
		fmt.Printf("== document parser throughput [scale %s]\n", s.Name)
		rep, err := bench.RunParse(s, progress)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// -exp cluster: scatter/gather publish throughput against the shard
	// count, all shards in-process over loopback → BENCH_cluster.json.
	if *expID == "cluster" {
		counts, err := parseWorkers(*shardCounts)
		if err != nil {
			fatal(fmt.Errorf("bad -cluster-shards: %w", err))
		}
		out := *jsonOut
		if out == "" {
			out = "BENCH_cluster.json"
		}
		fmt.Printf("== cluster scatter/gather throughput [scale %s, shards %v]\n", s.Name, counts)
		rep, err := bench.RunCluster(s, counts, progress)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// -exp chaos: cluster fault behavior through the deterministic
	// fault-injection proxy — partition, flap, and slow-link scenarios
	// with breaker activity and recovery times → BENCH_chaos.json.
	if *expID == "chaos" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_chaos.json"
		}
		fmt.Printf("== cluster fault injection: partition, flap, slow link [scale %s]\n", s.Name)
		rep, err := bench.RunChaos(s, progress)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	// -exp guard: resource governance under pathological documents. Each
	// bomb runs against its guarding limit; the report records which limit
	// tripped and the time-to-trip → BENCH_guard.json.
	if *expID == "guard" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_guard.json"
		}
		fmt.Println("== resource governance: bombs vs limits")
		points, err := runGuard(*verbose)
		if err != nil {
			fatal(err)
		}
		if err := writeJSON(out, points); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", out)
		return
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.Experiments
	} else {
		e, err := bench.ExperimentByID(*expID)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	var allPoints []bench.Point
	for _, e := range exps {
		fmt.Printf("== %s [scale %s: %d docs, expression factor %.2f]\n", e.Title, s.Name, s.Docs, s.Factor)
		t0 := time.Now()
		points, err := e.Run(s, progress)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		bench.PrintPoints(os.Stdout, points)
		fmt.Printf("-- %s done in %v\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
		allPoints = append(allPoints, points...)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, allPoints); err != nil {
			fatal(err)
		}
		fmt.Printf("-- wrote %s\n", *jsonOut)
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

func printStats(s bench.Scale) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := bench.DefaultWorkloadConfig(1000)
		cfg.Docs = s.Docs
		w, err := bench.NewWorkload(d, cfg)
		if err != nil {
			fatal(err)
		}
		st, err := w.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-5s docs=%d avg-tags=%.0f avg-bytes=%.0f avg-paths=%.0f\n",
			d.Name, st.Docs, st.AvgTags, st.AvgBytes, st.AvgPaths)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfbench:", err)
	os.Exit(1)
}

// validateMetricsURL fetches a Prometheus exposition and runs it through
// the strict 0.0.4 validator — the CI smoke check that a live server's
// (or a cluster coordinator's rolled-up) /metrics stays scrapable.
func validateMetricsURL(url string) error {
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d: %s", url, resp.StatusCode, body)
	}
	return metrics.ValidateExposition(string(body))
}
