// Command xfbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints its measured series; the shapes
// — who wins, by roughly what factor, where crossovers fall — are the
// reproduction target (absolute times depend on the host).
//
// Usage:
//
//	xfbench -exp fig6a                # one experiment at the default scale
//	xfbench -exp all -scale smoke     # everything, fast sanity pass
//	xfbench -exp fig7 -scale full     # paper scale (millions of XPEs)
//	xfbench -list                     # list experiment ids
//	xfbench -stats                    # print workload statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"predfilter/internal/bench"
	"predfilter/internal/dtd"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.String("scale", "default", "scale: smoke, default or full")
		list    = flag.Bool("list", false, "list experiments and exit")
		stats   = flag.Bool("stats", false, "print workload statistics and exit")
		verbose = flag.Bool("v", true, "print per-point progress")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	s, err := bench.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	if *stats {
		printStats(s)
		return
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.Experiments
	} else {
		e, err := bench.ExperimentByID(*expID)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	progress := os.Stderr
	if !*verbose {
		progress = nil
	}
	for _, e := range exps {
		fmt.Printf("== %s [scale %s: %d docs, expression factor %.2f]\n", e.Title, s.Name, s.Docs, s.Factor)
		t0 := time.Now()
		points, err := e.Run(s, progress)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		bench.PrintPoints(os.Stdout, points)
		fmt.Printf("-- %s done in %v\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}

func printStats(s bench.Scale) {
	for _, d := range []*dtd.DTD{dtd.NITF(), dtd.PSD()} {
		cfg := bench.DefaultWorkloadConfig(1000)
		cfg.Docs = s.Docs
		w, err := bench.NewWorkload(d, cfg)
		if err != nil {
			fatal(err)
		}
		st, err := w.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-5s docs=%d avg-tags=%.0f avg-bytes=%.0f avg-paths=%.0f\n",
			d.Name, st.Docs, st.AvgTags, st.AvgBytes, st.AvgPaths)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfbench:", err)
	os.Exit(1)
}
