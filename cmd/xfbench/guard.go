package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"predfilter"
	"predfilter/workload"
)

// The guard experiment measures graceful degradation: each pathological
// document (depth bomb, path-explosion bomb, occurrence-pair blowup) is
// matched under a governance limit, and the report records which limit
// tripped and how long the engine took to fail — the reproduction target
// is that every bomb fails fast with a typed limit error instead of
// stalling the engine.

// guardPoint is one bomb × limit measurement in BENCH_guard.json.
type guardPoint struct {
	Case     string `json:"case"`
	DocBytes int    `json:"doc_bytes"`
	Limit    string `json:"limit"`   // which limit kind tripped ("" = no trip)
	Bound    int64  `json:"bound"`   // the configured bound
	Got      int64  `json:"got"`     // how far the document got
	TripNS   int64  `json:"trip_ns"` // wall time from submit to typed error
	Matched  int    `json:"matched"` // matches when nothing tripped
	Error    string `json:"error,omitempty"`
}

// runGuard runs every bomb under its guarding limit and, as a control,
// the occurrence bomb under a wall-clock deadline.
func runGuard(verbose bool) ([]guardPoint, error) {
	occDoc, occExpr := workload.OccurrenceBomb(42, 48)
	cases := []struct {
		name string
		doc  []byte
		expr string
		lim  predfilter.Limits
	}{
		{"depth_bomb", workload.DepthBomb(1 << 17), "//d", predfilter.Limits{MaxDepth: 256}},
		{"path_bomb", workload.PathBomb(1 << 20), "//p", predfilter.Limits{MaxPaths: 1 << 14}},
		{"tuple_bomb", workload.PathBomb(1 << 20), "//p", predfilter.Limits{MaxTuples: 1 << 15}},
		{"occurrence_bomb_steps", occDoc, occExpr, predfilter.Limits{MaxSteps: 1 << 22}},
		{"occurrence_bomb_deadline", occDoc, occExpr, predfilter.Limits{MatchDeadline: 100 * time.Millisecond}},
	}
	points := make([]guardPoint, 0, len(cases))
	for _, c := range cases {
		eng := predfilter.New(predfilter.Config{Limits: c.lim})
		if _, err := eng.Add(c.expr); err != nil {
			return nil, fmt.Errorf("guard %s: add %q: %w", c.name, c.expr, err)
		}
		t0 := time.Now()
		sids, err := eng.MatchContext(context.Background(), c.doc)
		took := time.Since(t0)
		p := guardPoint{Case: c.name, DocBytes: len(c.doc), TripNS: took.Nanoseconds(), Matched: len(sids)}
		var le *predfilter.LimitError
		if errors.As(err, &le) {
			p.Limit = le.Kind.String()
			p.Bound = le.Limit
			p.Got = le.Got
		} else if err != nil {
			p.Error = err.Error()
		}
		points = append(points, p)
		if verbose {
			fmt.Printf("  %-26s %8d bytes  tripped=%-10s in %v\n",
				c.name, len(c.doc), orNone(p.Limit), took.Round(time.Microsecond))
		}
	}
	return points, nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
