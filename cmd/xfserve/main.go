// Command xfserve runs the content-based dissemination service: an HTTP
// API over the filtering engine (see internal/server for the endpoints).
//
//	xfserve -addr :8080 -state /var/lib/xfserve
//	curl -X POST localhost:8080/subscriptions -d '{"expression":"/feed/alert"}'
//	curl -X POST localhost:8080/publish --data-binary @doc.xml
//	curl 'localhost:8080/deliveries/0?max=5'
//	curl -X POST localhost:8080/admin/snapshot
//	curl localhost:8080/metrics            # Prometheus text exposition
//	curl -X POST 'localhost:8080/publish?trace=1' --data-binary @doc.xml
//
// With -state, subscriptions are durable: every add/remove is appended to
// a checksummed write-ahead log before it is acknowledged, and restarting
// with the same directory recovers them under their original ids — even
// after a crash that tore the log mid-record. On SIGINT/SIGTERM the server
// shuts down gracefully: in-flight requests drain, a final snapshot
// compacts the log, and the store is closed.
//
// Cluster mode shards the subscription set across several xfserve
// instances (internal/cluster). One process per shard runs as usual; one
// coordinator process routes for all of them:
//
//	xfserve -addr :8081 -state /var/lib/shard0          # shard 0
//	xfserve -addr :8082 -state /var/lib/shard1          # shard 1
//	xfserve -cluster http://127.0.0.1:8081,http://127.0.0.1:8082 -addr :8080
//
// The coordinator serves the same API as a single server: subscribes are
// placed on their owning shard by consistent hashing, publishes
// scatter/gather across all shards, and /stats and /metrics carry
// per-shard counters. -standbys names a hot standby per shard (empty
// entries allowed) to promote when a shard stays down. A standby is an
// xfserve running with -follow pointing at its primary, which ships the
// primary's WAL into the local subscription set.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"predfilter"
	"predfilter/internal/cluster"
	"predfilter/internal/server"
	"predfilter/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		queue      = flag.Int("queue", 128, "per-subscription delivery queue limit")
		maxDoc     = flag.Int64("max-doc", 1<<20, "maximum published document size in bytes")
		postponed  = flag.Bool("postponed", false, "use selection-postponed attribute evaluation")
		subsFile   = flag.String("subs", "", "file with one subscription expression per line to preload")
		workers    = flag.Int("workers", 0, "worker count for batch publishes (0 = GOMAXPROCS)")
		debug      = flag.Bool("debug", false, "expose /debug/pprof/ and /debug/vars")
		state      = flag.String("state", "", "state directory for durable subscriptions (empty = in-memory)")
		snapEvery  = flag.Int("snapshot-every", 0, "snapshot after this many logged operations (0 = default 8192, negative = disabled)")
		snapPeriod = flag.Duration("snapshot-interval", 0, "additionally snapshot on this interval (0 = disabled)")
		noSync     = flag.Bool("nosync", false, "skip fsync on the state directory (faster, loses power-failure durability)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		cacheMB    = flag.Int64("cache-mb", 0, "path-signature cache bound in MiB (0 = default 16, negative = disabled)")
		slowMS     = flag.Int64("slow-ms", 0, "log documents whose parse+match exceeds this many milliseconds (0 = disabled)")

		// Observability.
		flightRecords = flag.Int("flight-records", 0, "flight recorder ring capacity for anomalous publishes, dumped on SIGQUIT and served at /debug/flight (0 = default 64, negative = disabled)")
		slowPublish   = flag.Duration("slow-publish", 0, "cluster: retain publishes slower than this in the coordinator's flight recorder (0 = disabled)")
		traceAll      = flag.Bool("trace-all", false, "cluster: trace every publish, not only those carrying X-Predfilter-Trace or ?trace=1")

		// Resource governance (0 disables each bound).
		maxDepth      = flag.Int("max-depth", 0, "maximum XML nesting depth per document (0 = unlimited)")
		maxPaths      = flag.Int("max-paths", 0, "maximum root-to-leaf paths per document (0 = unlimited)")
		maxTuples     = flag.Int("max-tuples", 0, "maximum total path tuples per document (0 = unlimited)")
		maxSteps      = flag.Int64("max-steps", 0, "occurrence-determination step budget per document (0 = unlimited)")
		matchDeadline = flag.Duration("match-deadline", 0, "wall-clock match deadline per document (0 = none)")

		// Admission control and per-request deadlines.
		maxInflight = flag.Int("max-inflight", 0, "max concurrently matching publish requests (0 = unlimited)")
		maxQueued   = flag.Int("inflight-queue", 0, "bounded wait queue beyond -max-inflight (0 = 4x max-inflight)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-publish-request deadline (0 = none)")
		maxReqBytes = flag.Int64("max-request-bytes", 0, "JSON request body bound for /subscriptions and /publish/batch (0 = default 64 MiB)")

		// HTTP server timeouts (slowloris defense; 0 disables one).
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTimeout      = flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout")

		// Cluster mode.
		clusterShards  = flag.String("cluster", "", "run as cluster coordinator over this comma-separated shard URL list (instead of serving an engine)")
		standbys       = flag.String("standbys", "", "comma-separated standby URLs parallel to -cluster (empty entries for shards without one)")
		publishTimeout = flag.Duration("publish-timeout", 5*time.Second, "cluster: per-shard deadline for each publish attempt")
		retries        = flag.Int("retries", 2, "cluster: transient per-shard failure retries before skipping the shard (-1 disables retries for at-most-once delivery)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "cluster: shard health-check period for automatic standby promotion (0 = disabled)")
		clusterRecover = flag.Bool("cluster-recover", false, "cluster: verify coordinator state against the shards' live subscriptions at startup (repairing drift; without -coord-state this rebuilds from the shards and they must all be reachable)")
		coordState     = flag.String("coord-state", "", "cluster: coordinator state directory for durable routing — sid counter, routing table, orphan set survive kill -9 (empty = in-memory)")
		breakerThresh  = flag.Int("breaker-threshold", 0, "cluster: consecutive transient shard failures that open the shard's circuit breaker (0 = default 5, negative = disabled)")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "cluster: how long an open breaker refuses calls before a half-open probe (0 = default 2s)")
		retryBackMax   = flag.Duration("retry-backoff-max", 0, "cluster: cap on the exponential retry backoff between attempts (0 = default 1s)")
		follow         = flag.String("follow", "", "run as a hot standby shipping this primary's WAL into the local subscription set")
		followEvery    = flag.Duration("follow-interval", 250*time.Millisecond, "WAL-shipping poll period for -follow")
	)
	flag.Parse()

	if *clusterShards != "" {
		runCoordinator(coordinatorOptions{
			addr:           *addr,
			shards:         splitList(*clusterShards),
			standbys:       splitList(*standbys),
			publishTimeout: *publishTimeout,
			retries:        *retries,
			healthInterval: *healthInterval,
			recover:        *clusterRecover,
			stateDir:       *coordState,
			noSync:         *noSync,
			breakerThresh:  *breakerThresh,
			breakerCool:    *breakerCool,
			retryBackMax:   *retryBackMax,
			maxDoc:         *maxDoc,
			flightRecords:  *flightRecords,
			slowPublish:    *slowPublish,
			traceAll:       *traceAll,
			drain:          *drain,
			readHeader:     *readHeaderTimeout,
			read:           *readTimeout,
			write:          *writeTimeout,
			idle:           *idleTimeout,
		})
		return
	}

	cfg := server.Config{
		QueueLimit:       *queue,
		MaxDocumentBytes: *maxDoc,
		Workers:          *workers,
		Debug:            *debug,
		StateDir:         *state,
		SnapshotEvery:    *snapEvery,
		SnapshotInterval: *snapPeriod,
		NoSync:           *noSync,
		MaxRequestBytes:  *maxReqBytes,
		MaxInflight:      *maxInflight,
		MaxQueued:        *maxQueued,
		RequestTimeout:   *reqTimeout,
		FlightRecords:    *flightRecords,
	}
	cfg.Engine.Limits = predfilter.Limits{
		MaxDepth:      *maxDepth,
		MaxPaths:      *maxPaths,
		MaxTuples:     *maxTuples,
		MaxDocBytes:   *maxDoc,
		MaxSteps:      *maxSteps,
		MatchDeadline: *matchDeadline,
	}
	if *postponed {
		cfg.Engine.AttributeMode = predfilter.PostponedAttributes
	}
	if *slowMS > 0 {
		cfg.Engine.SlowDocThreshold = time.Duration(*slowMS) * time.Millisecond
	}
	switch {
	case *cacheMB < 0:
		cfg.Engine.PathCacheBytes = -1
	case *cacheMB > 0:
		cfg.Engine.PathCacheBytes = *cacheMB << 20
	}
	srv, err := server.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *state != "" {
		log.Printf("xfserve: durable state in %s", *state)
	}
	if *subsFile != "" {
		xpes, err := readLines(*subsFile)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := srv.Preload(xpes)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("xfserve: preloaded %d subscriptions from %s", len(ids), *subsFile)
	}
	if *follow != "" {
		fol, err := cluster.NewFollower(cluster.FollowerConfig{
			Primary:  *follow,
			Target:   srv,
			Interval: *followEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		fol.Start()
		defer fol.Stop()
		log.Printf("xfserve: hot standby shipping WAL from %s", *follow)
	}

	dumpFlightOnQuit(srv.FlightRecorder())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("xfserve listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// Listener failed before any signal; still close the store so the
		// log is compacted.
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	log.Printf("xfserve: shutting down (draining for up to %v)", *drain)
	// Refuse new publishes with 503 while the listener drains in-flight
	// requests; Close (below) would set this too, but only after Shutdown.
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("xfserve: drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("xfserve: close state: %v", err)
	}
	log.Printf("xfserve: bye")
}

type coordinatorOptions struct {
	addr           string
	shards         []string
	standbys       []string
	publishTimeout time.Duration
	retries        int
	healthInterval time.Duration
	recover        bool
	stateDir       string
	noSync         bool
	breakerThresh  int
	breakerCool    time.Duration
	retryBackMax   time.Duration
	maxDoc         int64
	flightRecords  int
	slowPublish    time.Duration
	traceAll       bool
	drain          time.Duration
	readHeader     time.Duration
	read           time.Duration
	write          time.Duration
	idle           time.Duration
}

// dumpFlightOnQuit installs a SIGQUIT handler that dumps the flight
// recorder — the last K anomalous publishes with their span trees — to
// the log, so a wedged or misbehaving process can be asked for its
// recent history with kill -QUIT without restarting it. No-op when the
// recorder is disabled.
func dumpFlightOnQuit(f *trace.FlightRecorder) {
	if f == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			recs := f.Snapshot()
			out, err := json.MarshalIndent(map[string]any{
				"recorded": f.Recorded(),
				"capacity": f.Cap(),
				"records":  recs,
			}, "", "  ")
			if err != nil {
				log.Printf("xfserve: flight dump: %v", err)
				continue
			}
			log.Printf("xfserve: flight recorder dump (%d records):\n%s", len(recs), out)
		}
	}()
}

// runCoordinator serves the cluster coordinator: the single-server API
// routed over the configured shards.
func runCoordinator(o coordinatorOptions) {
	if len(o.standbys) > len(o.shards) {
		log.Fatalf("xfserve: %d standbys for %d shards", len(o.standbys), len(o.shards))
	}
	specs := make([]cluster.ShardSpec, len(o.shards))
	for i, addr := range o.shards {
		specs[i] = cluster.ShardSpec{Name: addr, Addr: addr}
		if i < len(o.standbys) && o.standbys[i] != "" {
			specs[i].Standby = o.standbys[i]
		}
	}
	coord, err := cluster.New(cluster.Config{
		Shards:               specs,
		PublishTimeout:       o.publishTimeout,
		Retries:              o.retries,
		HealthInterval:       o.healthInterval,
		Recover:              o.recover,
		StateDir:             o.stateDir,
		NoSync:               o.noSync,
		BreakerThreshold:     o.breakerThresh,
		BreakerCooldown:      o.breakerCool,
		RetryBackoffMax:      o.retryBackMax,
		MaxDocumentBytes:     o.maxDoc,
		FlightRecords:        o.flightRecords,
		SlowPublishThreshold: o.slowPublish,
		TraceAll:             o.traceAll,
	})
	if err != nil {
		log.Fatal(err)
	}
	dumpFlightOnQuit(coord.FlightRecorder())
	hs := &http.Server{
		Addr:              o.addr,
		Handler:           coord,
		ReadHeaderTimeout: o.readHeader,
		ReadTimeout:       o.read,
		WriteTimeout:      o.write,
		IdleTimeout:       o.idle,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("xfserve: cluster coordinator for %d shards listening on %s", len(specs), o.addr)
		errc <- hs.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		coord.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("xfserve: coordinator shutting down")
	coord.Close()
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("xfserve: drain: %v", err)
	}
	log.Printf("xfserve: bye")
}

// splitList splits a comma-separated flag, trimming whitespace and
// keeping empty entries (a shard without a standby).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// readLines reads one expression per line, skipping blanks and '#'
// comments.
func readLines(name string) ([]string, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
