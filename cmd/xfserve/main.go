// Command xfserve runs the content-based dissemination service: an HTTP
// API over the filtering engine (see internal/server for the endpoints).
//
//	xfserve -addr :8080
//	curl -X POST localhost:8080/subscriptions -d '{"expression":"/feed/alert"}'
//	curl -X POST localhost:8080/publish --data-binary @doc.xml
//	curl 'localhost:8080/deliveries/0?max=5'
package main

import (
	"bufio"
	"flag"
	"log"
	"net/http"
	"os"
	"strings"

	"predfilter"
	"predfilter/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		queue     = flag.Int("queue", 128, "per-subscription delivery queue limit")
		maxDoc    = flag.Int64("max-doc", 1<<20, "maximum published document size in bytes")
		postponed = flag.Bool("postponed", false, "use selection-postponed attribute evaluation")
		subsFile  = flag.String("subs", "", "file with one subscription expression per line to preload")
		workers   = flag.Int("workers", 0, "worker count for batch publishes (0 = GOMAXPROCS)")
		debug     = flag.Bool("debug", false, "expose /debug/pprof/ and /debug/vars")
	)
	flag.Parse()

	cfg := server.Config{QueueLimit: *queue, MaxDocumentBytes: *maxDoc, Workers: *workers, Debug: *debug}
	if *postponed {
		cfg.Engine.AttributeMode = predfilter.PostponedAttributes
	}
	srv := server.New(cfg)
	if *subsFile != "" {
		xpes, err := readLines(*subsFile)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := srv.Preload(xpes)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("xfserve: preloaded %d subscriptions from %s", len(ids), *subsFile)
	}
	log.Printf("xfserve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// readLines reads one expression per line, skipping blanks and '#'
// comments.
func readLines(name string) ([]string, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
