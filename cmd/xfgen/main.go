// Command xfgen generates synthetic filtering workloads — XML documents
// and XPath expression sets — from the built-in NITF and PSD schemas, for
// experimentation with xfilter/xfserve or external tools.
//
// Usage:
//
//	xfgen -schema nitf -docs 10 -out docs/            # docs/doc-0000.xml ...
//	xfgen -schema psd -exprs 5000 -distinct > subs.txt
//	xfgen -schema nitf -exprs 1000 -w 0.3 -do 0.1 -filters 2 -explain
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"predfilter"
	"predfilter/workload"
)

func main() {
	var (
		schema   = flag.String("schema", "nitf", "schema: nitf or psd")
		docs     = flag.Int("docs", 0, "number of documents to generate")
		exprs    = flag.Int("exprs", 0, "number of expressions to generate")
		outDir   = flag.String("out", "", "directory for generated documents (default: stdout)")
		maxLvl   = flag.Int("levels", 6, "maximum document nesting levels")
		maxLen   = flag.Int("l", 6, "L: maximum expression length")
		wildcard = flag.Float64("w", 0.2, "W: wildcard probability per step")
		desc     = flag.Float64("do", 0.2, "DO: descendant probability per step")
		distinct = flag.Bool("distinct", false, "D: discard duplicate expressions")
		filters  = flag.Int("filters", 0, "attribute filters per expression")
		seed     = flag.Int64("seed", 42, "generator seed")
		explain  = flag.Bool("explain", false, "print each expression's predicate encoding")
		idxStats = flag.Bool("index-stats", false, "load generated expressions into an engine and report index statistics on stderr")
	)
	flag.Parse()

	var s workload.Schema
	switch *schema {
	case "nitf":
		s = workload.NITF()
	case "psd":
		s = workload.PSD()
	default:
		fatal(fmt.Errorf("unknown schema %q (nitf, psd)", *schema))
	}
	if *docs == 0 && *exprs == 0 {
		fatal(fmt.Errorf("nothing to do; pass -docs and/or -exprs"))
	}

	if *docs > 0 {
		generated := workload.Documents(s, *docs, workload.DocumentConfig{MaxLevels: *maxLvl, Seed: *seed})
		for i, d := range generated {
			if *outDir == "" {
				os.Stdout.Write(d)
				fmt.Println()
				continue
			}
			name := filepath.Join(*outDir, fmt.Sprintf("%s-%04d.xml", *schema, i))
			if err := os.WriteFile(name, d, 0o644); err != nil {
				fatal(err)
			}
		}
		if *outDir != "" {
			fmt.Fprintf(os.Stderr, "xfgen: wrote %d documents to %s\n", *docs, *outDir)
		}
	}

	if *exprs > 0 {
		xpes, err := workload.Expressions(s, *exprs, workload.ExpressionConfig{
			MaxLength:  *maxLen,
			Wildcard:   *wildcard,
			Descendant: *desc,
			Distinct:   *distinct,
			Filters:    *filters,
			Seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		for _, x := range xpes {
			if *explain {
				enc, err := predfilter.Explain(x)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-40s %s\n", x, enc)
			} else {
				fmt.Println(x)
			}
		}
		// -index-stats previews how the generated set will index: the
		// sharing the engine's always-on metrics report (distinct
		// expressions and predicates) determines filtering cost far more
		// than the raw expression count does.
		if *idxStats {
			eng := predfilter.New(predfilter.Config{})
			for _, x := range xpes {
				if _, err := eng.Add(x); err != nil {
					fatal(err)
				}
			}
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "xfgen: %d expressions -> %d distinct (%d nested), %d distinct predicates\n",
				st.Expressions, st.DistinctExpressions, st.NestedExpressions, st.DistinctPredicates)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfgen:", err)
	os.Exit(1)
}
