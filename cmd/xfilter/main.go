// Command xfilter filters XML documents against a set of XPath
// expressions, printing for each document the expressions it matches.
//
// Expressions come from -e flags and/or an expression file (one per line,
// '#' comments); documents are file arguments or stdin.
//
// Usage:
//
//	xfilter -e '/nitf/body//p' -e '//keyword[@key=storm]' doc1.xml doc2.xml
//	xfilter -f subscriptions.txt < doc.xml
//	xfilter -f subs.txt -org basic -attrs postponed -count docs/*.xml
//	xfilter -f subs.txt -workers 4 -count docs/*.xml
//	xfilter -e '/nitf/body//p' -trace doc.xml      # per-predicate match evidence
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"predfilter"
)

type exprList []string

func (e *exprList) String() string     { return strings.Join(*e, ", ") }
func (e *exprList) Set(s string) error { *e = append(*e, s); return nil }

func main() {
	var (
		exprs     exprList
		exprFile  = flag.String("f", "", "file with one XPath expression per line")
		org       = flag.String("org", "pc-ap", "expression organization: basic, pc, pc-ap")
		attrs     = flag.String("attrs", "inline", "attribute filter evaluation: inline, postponed")
		countOnly = flag.Bool("count", false, "print match counts only")
		allMode   = flag.Bool("all", false, "report the number of match combinations per expression (all-matches mode)")
		timing    = flag.Bool("t", false, "print per-document filter time")
		workers   = flag.Int("workers", 1, "filter documents concurrently with this many workers (ignored with -all)")
		cacheMB   = flag.Int64("cache-mb", 0, "path-signature cache bound in MiB (0 = default 16, negative = disabled)")
		traceDoc  = flag.Bool("trace", false, "explain each expression's match or miss with per-predicate evidence (ignored with -all or -workers)")

		// Resource governance (0 disables each bound). A document exceeding
		// a bound fails with a typed limit error naming the bound.
		maxDepth      = flag.Int("max-depth", 0, "maximum XML nesting depth per document (0 = unlimited)")
		maxPaths      = flag.Int("max-paths", 0, "maximum root-to-leaf paths per document (0 = unlimited)")
		maxTuples     = flag.Int("max-tuples", 0, "maximum total path tuples per document (0 = unlimited)")
		maxDocBytes   = flag.Int64("max-doc-bytes", 0, "maximum document size in bytes (0 = unlimited)")
		maxSteps      = flag.Int64("max-steps", 0, "occurrence-determination step budget per document (0 = unlimited)")
		matchDeadline = flag.Duration("match-deadline", 0, "wall-clock match deadline per document (0 = none)")
	)
	flag.Var(&exprs, "e", "XPath expression (repeatable)")
	flag.Parse()

	cfg := predfilter.Config{}
	switch *org {
	case "basic":
		cfg.Organization = predfilter.Basic
	case "pc":
		cfg.Organization = predfilter.PrefixCover
	case "pc-ap", "":
		cfg.Organization = predfilter.PrefixCoverAP
	default:
		fatal(fmt.Errorf("unknown -org %q", *org))
	}
	switch *attrs {
	case "inline", "":
		cfg.AttributeMode = predfilter.InlineAttributes
	case "postponed":
		cfg.AttributeMode = predfilter.PostponedAttributes
	default:
		fatal(fmt.Errorf("unknown -attrs %q", *attrs))
	}
	switch {
	case *cacheMB < 0:
		cfg.PathCacheBytes = -1
	case *cacheMB > 0:
		cfg.PathCacheBytes = *cacheMB << 20
	}
	cfg.Limits = predfilter.Limits{
		MaxDepth:      *maxDepth,
		MaxPaths:      *maxPaths,
		MaxTuples:     *maxTuples,
		MaxDocBytes:   *maxDocBytes,
		MaxSteps:      *maxSteps,
		MatchDeadline: *matchDeadline,
	}

	all := []string(exprs)
	if *exprFile != "" {
		fromFile, err := readExprFile(*exprFile)
		if err != nil {
			fatal(err)
		}
		all = append(all, fromFile...)
	}
	if len(all) == 0 {
		fatal(fmt.Errorf("no expressions; use -e or -f"))
	}

	eng := predfilter.New(cfg)
	bySID := make(map[predfilter.SID]string, len(all))
	for _, s := range all {
		sid, err := eng.Add(s)
		if err != nil {
			fatal(err)
		}
		bySID[sid] = s
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "xfilter: %d expressions (%d distinct, %d distinct predicates)\n",
		st.Expressions, st.DistinctExpressions, st.DistinctPredicates)

	files := flag.Args()
	if len(files) == 0 {
		files = []string{"-"}
	}

	// With -workers, documents go through the batch pipeline; results come
	// back in input order, so the output is identical to the sequential
	// loop below.
	if *workers > 1 && !*allMode {
		names := make([]string, len(files))
		docs := make([][]byte, len(files))
		for i, name := range files {
			var err error
			if name == "-" {
				docs[i], err = io.ReadAll(os.Stdin)
				name = "<stdin>"
			} else {
				docs[i], err = os.ReadFile(name)
			}
			if err != nil {
				fatal(err)
			}
			names[i] = name
		}
		t0 := time.Now()
		results := eng.MatchBatch(docs, *workers)
		took := time.Since(t0)
		for i, r := range results {
			if r.Err != nil {
				fatal(fmt.Errorf("%s: %w", names[i], r.Err))
			}
			fmt.Printf("%s: %d matches", names[i], len(r.SIDs))
			if !*countOnly {
				for _, sid := range r.SIDs {
					fmt.Printf("\n  %s", bySID[sid])
				}
			}
			fmt.Println()
		}
		if *timing {
			fmt.Printf("filtered %d documents in %v (%d workers)\n", len(files), took, *workers)
		}
		return
	}

	for _, name := range files {
		var data []byte
		var err error
		if name == "-" {
			data, err = io.ReadAll(os.Stdin)
			name = "<stdin>"
		} else {
			data, err = os.ReadFile(name)
		}
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		var sids []predfilter.SID
		var counts map[predfilter.SID]int
		var tr *predfilter.MatchTrace
		var err2 error
		switch {
		case *allMode:
			counts, err2 = eng.MatchCounts(data)
			for sid := range counts {
				sids = append(sids, sid)
			}
		case *traceDoc:
			sids, tr, err2 = eng.MatchTraced(data)
		default:
			sids, err2 = eng.Match(data)
		}
		took := time.Since(t0)
		if err2 != nil {
			fatal(fmt.Errorf("%s: %w", name, err2))
		}
		fmt.Printf("%s: %d matches", name, len(sids))
		if !*countOnly {
			for _, sid := range sids {
				if *allMode {
					fmt.Printf("\n  %s (%d combinations)", bySID[sid], counts[sid])
				} else {
					fmt.Printf("\n  %s", bySID[sid])
				}
			}
		}
		if *timing {
			fmt.Printf("  (%v)", took)
		}
		fmt.Println()
		if tr != nil {
			printTrace(tr)
		}
	}
}

// printTrace renders the per-expression match explanation: which
// predicates hit at which document paths, and where a missed expression's
// chain first came up empty.
func printTrace(tr *predfilter.MatchTrace) {
	fmt.Printf("  trace: %d paths, parse %v, cache %v, predicates %v, occurrence %v\n",
		tr.Paths, time.Duration(tr.ParseNanos), time.Duration(tr.CacheNanos),
		time.Duration(tr.PredMatchNanos), time.Duration(tr.OccurNanos))
	for _, e := range tr.Exprs {
		verdict := "miss"
		if e.Matched {
			verdict = "HIT"
		}
		note := ""
		if e.ViaCover {
			note = " (via covering expression)"
		}
		if e.Nested {
			note = " (nested; evidence summarized)"
		}
		fmt.Printf("  [%-4s] %s%s\n", verdict, e.Expr, note)
		for _, p := range e.Paths {
			fmt.Printf("         %s", p.Path)
			if p.FilteredOut {
				fmt.Printf("  [postponed filter rejected]")
			}
			fmt.Println()
			for _, pe := range p.Predicates {
				mark := "miss"
				if pe.Hit {
					mark = "hit "
				}
				fmt.Printf("           %s %s (%d occurrence pairs)\n", mark, pe.Predicate, pe.TotalPairs)
			}
		}
	}
	if tr.TruncatedExprs {
		fmt.Println("  trace: further expressions not traced (cap reached)")
	}
}

func readExprFile(name string) ([]string, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfilter:", err)
	os.Exit(1)
}
